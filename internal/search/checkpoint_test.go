package search

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestCheckpointResumeBitCompatible pins the resume contract end to end: a
// run resumed from a mid-flight checkpoint produces the identical final
// result and trajectory as the uninterrupted run — same best EDP, same
// eval count, bit-compatible trajectory suffix. The checkpoint round-trips
// through JSON on the way, exactly as the service journal stores it.
func TestCheckpointResumeBitCompatible(t *testing.T) {
	const seed, evals, every = 9, 600, 100
	mm := MindMappings{Surrogate: conv1dSurrogate(t)}

	var cks []*Checkpoint
	full := conv1dContext(t, seed)
	full.CheckpointEvery = every
	full.Checkpoint = func(c *Checkpoint) { cks = append(cks, c.Clone()) }
	want, err := mm.Search(full, Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) < 3 {
		t.Fatalf("expected periodic checkpoints every %d of %d evals, got %d", every, evals, len(cks))
	}

	// Resume from a mid-run snapshot, round-tripped through JSON like a
	// journaled record.
	raw, err := json.Marshal(cks[2])
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Eval != 3*every {
		t.Fatalf("checkpoint 2 at eval %d, want %d", ck.Eval, 3*every)
	}

	resumedCtx := conv1dContext(t, seed)
	resumedCtx.Resume = &ck
	got, err := mm.Search(resumedCtx, Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	if got.Evals != want.Evals {
		t.Fatalf("resumed run paid %d evals, full run %d", got.Evals, want.Evals)
	}
	if got.BestEDP != want.BestEDP {
		t.Fatalf("resumed best %v, full best %v", got.BestEDP, want.BestEDP)
	}
	if got.Best.String() != want.Best.String() {
		t.Fatalf("resumed best mapping diverged:\n  %s\nvs\n  %s", got.Best.String(), want.Best.String())
	}
	if len(got.Trajectory) != len(want.Trajectory) {
		t.Fatalf("trajectory lengths diverged: %d vs %d", len(got.Trajectory), len(want.Trajectory))
	}
	for i := range want.Trajectory {
		if got.Trajectory[i].Eval != want.Trajectory[i].Eval ||
			got.Trajectory[i].BestEDP != want.Trajectory[i].BestEDP {
			t.Fatalf("trajectory diverged at sample %d: (%d, %v) vs (%d, %v)", i,
				got.Trajectory[i].Eval, got.Trajectory[i].BestEDP,
				want.Trajectory[i].Eval, want.Trajectory[i].BestEDP)
		}
	}
}

// TestResumeRejectsWrongMethod pins that a checkpoint only resumes the
// searcher that emitted it.
func TestResumeRejectsWrongMethod(t *testing.T) {
	ctx := conv1dContext(t, 1)
	ctx.Resume = &Checkpoint{Method: "SA"}
	if _, err := (MindMappings{Surrogate: conv1dSurrogate(t)}.Search(ctx, Budget{MaxEvals: 10})); err == nil {
		t.Fatal("MM accepted an SA checkpoint")
	}
}

// TestCancelEmitsBoundaryCheckpoint pins the drain contract: a cancelled
// run leaves a checkpoint no further along than its reported result, so a
// resume never replays work the result already covers, and covers all but
// at most one in-flight iteration.
func TestCancelEmitsBoundaryCheckpoint(t *testing.T) {
	ctx := conv1dContext(t, 3)
	ctx.QueryLatency = 2 * time.Millisecond
	ctx.CheckpointEvery = 10
	var last *Checkpoint
	ctx.Checkpoint = func(c *Checkpoint) { last = c.Clone() }
	cctx, cancel := context.WithCancel(context.Background())
	ctx.Ctx = cctx

	done := make(chan Result, 1)
	go func() {
		res, err := (MindMappings{Surrogate: conv1dSurrogate(t)}).Search(ctx, Budget{MaxEvals: 500_000})
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Evals == 0 || last == nil {
			t.Fatalf("expected progress and a checkpoint before cancel (evals %d)", res.Evals)
		}
		if last.Eval > res.Evals {
			t.Fatalf("checkpoint at eval %d beyond the result's %d", last.Eval, res.Evals)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search did not stop after cancellation")
	}
}

// TestCheckpointSurvivesInfiniteBest pins the JSON encoding of a
// checkpoint taken before any evaluation completed: best-so-far is +Inf,
// which a plain float64 field would corrupt.
func TestCheckpointSurvivesInfiniteBest(t *testing.T) {
	ck := Checkpoint{Method: "MM", BestEDP: jsonFloat(math.Inf(1))}
	raw, err := json.Marshal(&ck)
	if err != nil {
		t.Fatal(err)
	}
	var back Checkpoint
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(back.BestEDP), 1) {
		t.Fatalf("+Inf best round-tripped to %v", float64(back.BestEDP))
	}
}
