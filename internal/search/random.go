package search

import "mindmappings/internal/stats"

// RandomSearch draws uniform valid mappings until the budget is exhausted.
// It is the sanity-check baseline: any guided method must beat it.
type RandomSearch struct{}

// Name implements Searcher.
func (RandomSearch) Name() string { return "Random" }

// Search implements Searcher.
func (RandomSearch) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewRNG(ctx.Seed + 101)
	t := newTracker(ctx, budget)
	for !t.exhausted() {
		m := ctx.Space.Random(rng)
		if _, err := t.payEval(&m); err != nil {
			return Result{}, err
		}
	}
	return t.result("Random"), nil
}
