package search

import (
	"mindmappings/internal/mapspace"
	"mindmappings/internal/stats"
)

// RandomSearch draws uniform valid mappings until the budget is exhausted.
// It is the sanity-check baseline: any guided method must beat it.
type RandomSearch struct{}

// randomChunk is how many candidates RandomSearch draws per evaluation
// batch; samples are independent, so chunking changes nothing but the
// amortization (and, with Context.Parallelism, the fan-out width).
const randomChunk = 64

// Name implements Searcher.
func (RandomSearch) Name() string { return "Random" }

// Search implements Searcher.
func (RandomSearch) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewRNG(ctx.Seed + 101)
	t := newTracker(ctx, budget)
	cohort := make([]mapspace.Mapping, 0, randomChunk)
	var vals []float64
	for !t.exhausted() {
		cohort = cohort[:0]
		for i := 0; i < t.remainingEvals(randomChunk); i++ {
			cohort = append(cohort, ctx.Space.Random(rng))
		}
		var err error
		if vals, err = t.payEvalBatch(cohort, vals); err != nil {
			return Result{}, err
		}
	}
	return t.result("Random"), nil
}
