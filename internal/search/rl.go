package search

import (
	"fmt"
	"math"
	"math/rand"

	"mindmappings/internal/mapspace"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
)

// RL is the reinforcement-learning baseline (paper Appendix A): DDPG with
// an actor-critic pair of fully connected networks, a replay buffer, and
// soft target updates, following the HAQ-derived setup the paper used. The
// mapping is the MDP state (encoded vector), an action is a bounded
// perturbation of that vector, and the reward is the negative log
// normalized EDP of the projected result.
type RL struct {
	// Hidden is the width of the two hidden layers of actor and critic.
	// The paper uses 300 ("approximated with two fully-connected DNNs with
	// 300 neurons"); experiments on small budgets may shrink it.
	Hidden int
	// EpisodeLen is the number of steps before the environment resets to a
	// fresh random mapping. Defaults to 10.
	EpisodeLen int
	// BatchSize is the replay mini-batch. Defaults to 32.
	BatchSize int
	// Warmup is the number of transitions collected before training
	// starts. Defaults to 2x BatchSize.
	Warmup int
	// Gamma is the discount factor. Defaults to 0.9.
	Gamma float64
	// Tau is the soft target-update rate. Defaults to 0.01.
	Tau float64
	// ActorLR and CriticLR are Adam learning rates (defaults 1e-4, 1e-3).
	ActorLR  float64
	CriticLR float64
	// NoiseStd is the initial exploration noise, decayed linearly to 0.05
	// over the budget. Defaults to 0.4.
	NoiseStd float64
	// ActionScale converts the tanh-bounded action into encoded-vector
	// units. Defaults to 1.5 (about 1.5 octaves of tile-factor change).
	ActionScale float64
	// BufferCap bounds the replay buffer. Defaults to 4096.
	BufferCap int
}

// Name implements Searcher.
func (RL) Name() string { return "RL" }

type transition struct {
	state  []float64
	action []float64
	reward float64
	next   []float64
}

// ddpg bundles the learner state.
type ddpg struct {
	cfg          RL
	rng          *rand.Rand
	stateNorm    *stats.Normalizer
	actor        *nn.MLP
	critic       *nn.MLP
	actorTarget  *nn.MLP
	criticTarget *nn.MLP
	actorOpt     nn.Optimizer
	criticOpt    nn.Optimizer
	actorWS      *nn.Workspace
	criticWS     *nn.Workspace
	targetAWS    *nn.Workspace
	targetCWS    *nn.Workspace
	actorGrads   *nn.Grads
	criticGrads  *nn.Grads
	buffer       []transition
	bufferNext   int
	stateDim     int
	actionDim    int
}

func (r RL) withDefaults() RL {
	if r.Hidden <= 0 {
		r.Hidden = 300
	}
	if r.EpisodeLen <= 0 {
		r.EpisodeLen = 10
	}
	if r.BatchSize <= 0 {
		r.BatchSize = 32
	}
	if r.Warmup <= 0 {
		r.Warmup = 2 * r.BatchSize
	}
	if r.Gamma <= 0 || r.Gamma >= 1 {
		r.Gamma = 0.9
	}
	if r.Tau <= 0 || r.Tau > 1 {
		r.Tau = 0.01
	}
	if r.ActorLR <= 0 {
		r.ActorLR = 1e-4
	}
	if r.CriticLR <= 0 {
		r.CriticLR = 1e-3
	}
	if r.NoiseStd <= 0 {
		r.NoiseStd = 0.4
	}
	if r.ActionScale <= 0 {
		r.ActionScale = 1.5
	}
	if r.BufferCap <= 0 {
		r.BufferCap = 4096
	}
	return r
}

// Search implements Searcher.
func (r RL) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	cfg := r.withDefaults()
	rng := stats.NewRNG(ctx.Seed + 401)

	dim := ctx.Space.VectorLen()
	agent, err := newDDPG(cfg, dim, rng, ctx.Space)
	if err != nil {
		return Result{}, err
	}

	t := newTracker(ctx, budget)
	for !t.exhausted() {
		// Reset: fresh random mapping starts each episode.
		cur := ctx.Space.Random(rng)
		curEDP, err := t.payEval(&cur)
		if err != nil {
			return Result{}, err
		}
		for step := 0; step < cfg.EpisodeLen && !t.exhausted(); step++ {
			state := agent.observe(ctx.Space.Encode(&cur))
			action := agent.act(state, agent.noise(t.progress()))
			next, err := agent.applyAction(ctx.Space, &cur, action)
			if err != nil {
				return Result{}, err
			}
			nextEDP, err := t.payEval(&next)
			if err != nil {
				return Result{}, err
			}
			reward := rewardFor(nextEDP, curEDP)
			nextState := agent.observe(ctx.Space.Encode(&next))
			agent.remember(transition{state, action, reward, nextState})
			agent.train()
			cur, curEDP = next, nextEDP
		}
	}
	return t.result(cfg.Name()), nil
}

// rewardFor shapes the reward: improvement in log10 EDP plus a small
// absolute-quality term so good absolute states are preferred.
func rewardFor(nextEDP, curEDP float64) float64 {
	improve := math.Log10(math.Max(curEDP, 1e-9)) - math.Log10(math.Max(nextEDP, 1e-9))
	quality := -math.Log10(math.Max(nextEDP, 1e-9)) * 0.1
	return improve + quality
}

func newDDPG(cfg RL, dim int, rng *rand.Rand, space *mapspace.Space) (*ddpg, error) {
	d := &ddpg{cfg: cfg, rng: rng, stateDim: dim, actionDim: dim}
	// Fit the state whitener on free samples (encoding costs nothing).
	sample := make([][]float64, 0, 256)
	for i := 0; i < 256; i++ {
		m := space.Random(rng)
		sample = append(sample, space.Encode(&m))
	}
	var err error
	d.stateNorm, err = stats.FitNormalizer(sample)
	if err != nil {
		return nil, fmt.Errorf("search: rl state normalizer: %w", err)
	}
	d.actor, err = nn.NewMLP([]int{dim, cfg.Hidden, cfg.Hidden, dim}, nn.ReLU{}, rng)
	if err != nil {
		return nil, err
	}
	d.critic, err = nn.NewMLP([]int{2 * dim, cfg.Hidden, cfg.Hidden, 1}, nn.ReLU{}, rng)
	if err != nil {
		return nil, err
	}
	d.actorTarget = d.actor.Clone()
	d.criticTarget = d.critic.Clone()
	d.actorOpt = nn.NewAdam(cfg.ActorLR)
	d.criticOpt = nn.NewAdam(cfg.CriticLR)
	d.actorWS = d.actor.NewWorkspace()
	d.criticWS = d.critic.NewWorkspace()
	d.targetAWS = d.actorTarget.NewWorkspace()
	d.targetCWS = d.criticTarget.NewWorkspace()
	d.actorGrads = d.actor.NewGrads()
	d.criticGrads = d.critic.NewGrads()
	return d, nil
}

// observe whitens a raw encoded mapping vector into the agent's state.
func (d *ddpg) observe(raw []float64) []float64 {
	return d.stateNorm.Applied(raw)
}

// noise returns the exploration noise level for the given budget progress.
func (d *ddpg) noise(progress float64) float64 {
	lo := 0.05
	return d.cfg.NoiseStd*(1-progress) + lo*progress
}

// act runs the deterministic policy plus exploration noise, returning a
// tanh-bounded action.
func (d *ddpg) act(state []float64, noise float64) []float64 {
	out := d.actor.Forward(d.actorWS, state)
	action := make([]float64, len(out))
	for i, v := range out {
		action[i] = math.Tanh(v + d.rng.NormFloat64()*noise)
	}
	return action
}

// applyAction moves the mapping by the scaled action in encoded space and
// projects back onto the valid map space.
func (d *ddpg) applyAction(space *mapspace.Space, cur *mapspace.Mapping, action []float64) (mapspace.Mapping, error) {
	vec := space.Encode(cur)
	for i := range vec {
		vec[i] += d.cfg.ActionScale * action[i]
	}
	return space.Decode(vec)
}

func (d *ddpg) remember(tr transition) {
	if len(d.buffer) < d.cfg.BufferCap {
		d.buffer = append(d.buffer, tr)
		return
	}
	d.buffer[d.bufferNext] = tr
	d.bufferNext = (d.bufferNext + 1) % d.cfg.BufferCap
}

// train performs one DDPG update (critic TD step, actor policy-gradient
// step, soft target updates) on a replay mini-batch.
func (d *ddpg) train() {
	if len(d.buffer) < d.cfg.Warmup {
		return
	}
	batch := d.cfg.BatchSize
	criticIn := make([]float64, 2*d.stateDim)
	lossGrad := []float64{0}

	// Critic update.
	d.criticGrads.Zero()
	for i := 0; i < batch; i++ {
		tr := &d.buffer[d.rng.Intn(len(d.buffer))]
		// Target action and value.
		ta := d.actorTarget.Forward(d.targetAWS, tr.next)
		copy(criticIn[:d.stateDim], tr.next)
		for j, v := range ta {
			criticIn[d.stateDim+j] = math.Tanh(v)
		}
		tq := d.criticTarget.Forward(d.targetCWS, criticIn)[0]
		y := tr.reward + d.cfg.Gamma*tq

		copy(criticIn[:d.stateDim], tr.state)
		copy(criticIn[d.stateDim:], tr.action)
		q := d.critic.Forward(d.criticWS, criticIn)[0]
		// d(0.5*(q-y)^2)/dq = q - y.
		lossGrad[0] = q - y
		d.critic.Backward(d.criticWS, lossGrad, d.criticGrads)
	}
	d.criticGrads.Scale(1 / float64(batch))
	d.criticGrads.ClipTo(1)
	d.criticOpt.Step(d.critic, d.criticGrads)

	// Actor update: ascend Q(s, tanh(actor(s))).
	d.actorGrads.Zero()
	dOutActor := make([]float64, d.actionDim)
	for i := 0; i < batch; i++ {
		tr := &d.buffer[d.rng.Intn(len(d.buffer))]
		pre := d.actor.Forward(d.actorWS, tr.state)
		act := make([]float64, d.actionDim)
		copy(criticIn[:d.stateDim], tr.state)
		for j, v := range pre {
			act[j] = math.Tanh(v)
			criticIn[d.stateDim+j] = act[j]
		}
		// The critic runs on its own workspace, so the actor's forward
		// state is still intact for the backward pass below.
		dQdIn := d.critic.InputGradient(d.criticWS, criticIn, []float64{1})
		for j := 0; j < d.actionDim; j++ {
			// Chain through tanh; negate to turn ascent into descent.
			dOutActor[j] = -dQdIn[d.stateDim+j] * (1 - act[j]*act[j])
		}
		d.actor.Backward(d.actorWS, dOutActor, d.actorGrads)
	}
	d.actorGrads.Scale(1 / float64(batch))
	d.actorGrads.ClipTo(1)
	d.actorOpt.Step(d.actor, d.actorGrads)

	softUpdate(d.actorTarget, d.actor, d.cfg.Tau)
	softUpdate(d.criticTarget, d.critic, d.cfg.Tau)
}

// softUpdate blends source parameters into the target network:
// target = tau*src + (1-tau)*target.
func softUpdate(target, src *nn.MLP, tau float64) {
	for i := range src.Layers {
		tw, sw := target.Layers[i].W.Data, src.Layers[i].W.Data
		for j := range sw {
			tw[j] = tau*sw[j] + (1-tau)*tw[j]
		}
		tb, sb := target.Layers[i].B, src.Layers[i].B
		for j := range sb {
			tb[j] = tau*sb[j] + (1-tau)*tb[j]
		}
	}
}
