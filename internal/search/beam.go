package search

import (
	"sort"

	"mindmappings/internal/mapspace"
	"mindmappings/internal/stats"
)

// BeamSearch is the beam-search mapper used by Tiramisu and Adams et al.
// (paper Table 2): keep the Width best mappings found so far, expand each
// with Branch perturbed children per round, evaluate every child with the
// reference cost model, and keep the best Width of parents+children. It is
// an extra comparison point beyond the paper's four baselines.
type BeamSearch struct {
	// Width is the beam width. Defaults to 8.
	Width int
	// Branch is the number of children expanded per beam entry per round.
	// Defaults to 4.
	Branch int
}

// Name implements Searcher.
func (BeamSearch) Name() string { return "Beam" }

// Search implements Searcher.
func (bs BeamSearch) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	width := bs.Width
	if width <= 0 {
		width = 8
	}
	branch := bs.Branch
	if branch <= 0 {
		branch = 4
	}
	if budget.MaxEvals > 0 && width > budget.MaxEvals/2 {
		width = budget.MaxEvals / 2
	}
	if width < 1 {
		width = 1
	}

	rng := stats.NewRNG(ctx.Seed + 601)
	t := newTracker(ctx, budget)

	type entry struct {
		m   mapspace.Mapping
		edp float64
	}
	// Initial beam, evaluated as one batch (candidate generation consumes
	// the rng in the scalar loop's order, so trajectories are identical).
	var beam []entry
	cohort := make([]mapspace.Mapping, 0, width*branch)
	for i := 0; i < t.remainingEvals(width); i++ {
		cohort = append(cohort, ctx.Space.Random(rng))
	}
	vals, err := t.payEvalBatch(cohort, nil)
	if err != nil {
		return Result{}, err
	}
	for i, v := range vals {
		beam = append(beam, entry{cohort[i], v})
	}

	for !t.exhausted() && len(beam) > 0 {
		children := append([]entry(nil), beam...)
		// Expand the whole round — every parent's children, parent-major,
		// exactly the scalar generation order — then evaluate it as one
		// batch.
		cohort = cohort[:0]
		limit := t.remainingEvals(len(beam) * branch)
		for _, parent := range beam {
			for c := 0; c < branch && len(cohort) < limit; c++ {
				cohort = append(cohort, ctx.Space.Perturb(rng, &parent.m))
			}
		}
		if vals, err = t.payEvalBatch(cohort, vals); err != nil {
			return Result{}, err
		}
		for i, v := range vals {
			children = append(children, entry{cohort[i], v})
		}
		sort.SliceStable(children, func(a, b int) bool { return children[a].edp < children[b].edp })
		if len(children) > width {
			children = children[:width]
		}
		beam = children
	}
	return t.result(bs.Name()), nil
}
