// Package search implements mapping-space search: the Mind Mappings
// gradient-based method (paper §4.2) and the black-box baselines it is
// evaluated against (§5.2, Appendix A) — simulated annealing, a genetic
// algorithm, DDPG reinforcement learning, and uniform random search.
//
// All methods run under a common budget (fixed number of cost-function
// evaluations for iso-iteration studies, fixed wall-clock for iso-time
// studies) and record best-so-far normalized-EDP trajectories, the raw data
// behind the paper's Figures 5 and 6.
//
// Searchers evaluate candidates through the pluggable costmodel layer:
// Context.Model is any costmodel.Evaluator, and the cross-cutting concerns
// of a paid reference-model query — eval accounting, emulated query
// latency, memoization, parallel batch fan-out — are costmodel middleware
// the tracker composes from the Context knobs. No searcher knows which
// backend computes its costs.
package search

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"mindmappings/internal/costmodel"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/oracle"
)

// Budget bounds a search run. At least one limit must be set; whichever is
// hit first terminates the run.
type Budget struct {
	// MaxEvals caps cost-function evaluations. For the black-box methods an
	// evaluation is one reference-cost-model query; for Mind Mappings it is
	// one surrogate query (§5.2: "In case of Mind Mappings, the cost
	// function is the trained surrogate").
	MaxEvals int
	// MaxTime caps wall-clock time.
	MaxTime time.Duration
	// Patience, when positive, declares convergence after this many
	// consecutive evaluations without improving the best-so-far value and
	// stops the run early (the paper runs Mind Mappings "until
	// convergence", §5.4.2). It composes with the hard limits above; at
	// least one hard limit must still be set.
	Patience int
	// TrajectoryStride thins the recorded trajectory: every improvement is
	// always recorded, plus every stride-th evaluation. 0 or 1 records
	// every evaluation (the historical behavior); larger strides keep
	// million-eval runs from holding million-entry Sample slices. Budget
	// accounting, convergence, and the search itself are unaffected — only
	// Result.Trajectory is thinned.
	TrajectoryStride int
}

func (b Budget) validate() error {
	if b.MaxEvals <= 0 && b.MaxTime <= 0 {
		return errors.New("search: budget needs MaxEvals or MaxTime")
	}
	if b.MaxEvals < 0 || b.MaxTime < 0 || b.Patience < 0 || b.TrajectoryStride < 0 {
		return fmt.Errorf("search: negative budget %+v", b)
	}
	return nil
}

// Sample is one best-so-far trajectory point.
type Sample struct {
	// Eval is the 1-based evaluation index at which this point was taken.
	Eval int
	// Elapsed is wall-clock time since the search started.
	Elapsed time.Duration
	// BestEDP is the lowest true normalized EDP seen so far.
	BestEDP float64
}

// Progress is one live telemetry sample handed to Context.Progress: the
// state of the search at a recorded trajectory point.
type Progress struct {
	// Eval is the number of budgeted evaluations completed so far.
	Eval int
	// Best is the best-so-far normalized objective value.
	Best float64
	// Elapsed is wall-clock time since the search started.
	Elapsed time.Duration
	// Improved reports whether this sample lowered the best-so-far value.
	Improved bool
}

// Result summarizes one search run.
type Result struct {
	Method     string
	Best       mapspace.Mapping
	BestEDP    float64 // normalized to the algorithmic minimum
	Trajectory []Sample
	Evals      int
	Elapsed    time.Duration
}

// BestAt returns the best-so-far EDP after the first n evaluations (or the
// final best if n exceeds the trajectory), used to compare methods at a
// fixed iteration count.
func (r *Result) BestAt(n int) float64 {
	best := math.Inf(1)
	for _, s := range r.Trajectory {
		if s.Eval > n {
			break
		}
		best = s.BestEDP
	}
	if math.IsInf(best, 1) {
		return r.BestEDP
	}
	return best
}

// BestAtTime returns the best-so-far EDP at the given elapsed time.
func (r *Result) BestAtTime(d time.Duration) float64 {
	best := math.Inf(1)
	for _, s := range r.Trajectory {
		if s.Elapsed > d {
			break
		}
		best = s.BestEDP
	}
	if math.IsInf(best, 1) {
		return r.BestEDP
	}
	return best
}

// Context carries everything a searcher needs for one problem: the map
// space, the pluggable cost model (paid queries), the normalization bound,
// and a seed for reproducibility.
type Context struct {
	Space *mapspace.Space
	// Model is the cost function f: any registered costmodel backend (or a
	// pre-composed middleware stack). The bare evaluator doubles as the
	// free offline-scoring path; the tracker layers the paid-query
	// middleware (QueryLatency, Evals, Cache, Parallelism) on top of it.
	Model costmodel.Evaluator
	Bound oracle.Bound
	Seed  int64
	// Objective selects the designer cost function (§2.3); the zero value
	// is EDP, the paper's evaluation objective. Every searcher optimizes
	// it; trajectory values are normalized objective values.
	Objective Objective
	// Ctx, when non-nil, lets callers cancel an in-flight search: every
	// searcher treats cancellation like budget exhaustion, stopping at the
	// next evaluation boundary (interrupting an in-flight emulated-latency
	// stall) and returning the best-so-far result with a nil error.
	// Long-running callers (the serve job manager, client disconnects)
	// rely on this for prompt teardown; nil means run to the budget.
	Ctx context.Context
	// QueryLatency, when positive, stalls every paid query by the given
	// duration (costmodel.WithLatency) to emulate the reference cost
	// model's per-query cost. Free scoring queries — Mind Mappings
	// trajectory measurements — never pay it. See DESIGN.md §4.
	QueryLatency time.Duration
	// Evals, when non-nil, receives paid-query accounting
	// (costmodel.WithCounter): cache hits and free scoring queries are not
	// charged. Counters may be shared across runs and backends-per-name
	// (the service's /v1/metrics reporting).
	Evals *costmodel.Counter
	// Cache, when non-nil, memoizes evaluations (costmodel.WithCache)
	// under fingerprint-prefixed keys, so evaluations of the same mapping
	// by different backends or accelerators never mix. Hits skip the
	// cost-model compute and its emulated QueryLatency but still count
	// toward the evaluation budget, so budget accounting is unchanged.
	Cache costmodel.Cache
	// Parallelism, when > 1, fans batched cost-model evaluations
	// (payEvalBatch: GA populations, SA pilot chains, beam expansions,
	// multi-chain gradient scoring) across a bounded pool of that many
	// workers (costmodel.WithParallel). Results are recorded in candidate
	// order, so trajectories are bit-identical for any Parallelism value;
	// only wall-clock changes. Note that a parallel batch runs to
	// completion, so a budget that expires mid-batch (Patience, MaxTime)
	// can overshoot the Evals counter by up to one batch — the search
	// budget accounting itself is unaffected. 0 and 1 evaluate
	// sequentially.
	Parallelism int
	// Progress, when non-nil, receives live best-so-far telemetry: it fires
	// exactly when a trajectory sample is recorded (every improvement, plus
	// every TrajectoryStride-th evaluation), from the searcher's own
	// goroutine. The serving stack's SSE endpoints and the CLI's -progress
	// line hang off this hook; implementations must be fast and must not
	// block (the search stalls while the hook runs). The eval hot path pays
	// nothing for it beyond one nil check per recorded sample.
	Progress func(Progress)
	// Checkpoint, when non-nil, receives resumable snapshots of the search
	// every CheckpointEvery evaluations (and once more at cancellation, so
	// a drained job checkpoints exactly where it stopped). Snapshots are
	// emitted from the searcher goroutine at iteration boundaries the
	// searcher knows how to re-enter; the hook owns the Checkpoint it is
	// handed. Searchers that do not support checkpointing simply never call
	// it. See DESIGN.md §9.
	Checkpoint func(*Checkpoint)
	// CheckpointEvery is the evaluation interval between snapshots
	// (DefaultCheckpointEvery when <= 0).
	CheckpointEvery int
	// Resume, when non-nil, restores the search from a prior Checkpoint
	// instead of starting fresh: budget position, best-so-far state,
	// trajectory prefix, RNG stream position, and searcher state all carry
	// over, so the resumed run's trajectory suffix is bit-compatible with
	// the uninterrupted run under the same Seed and request. The Context's
	// Seed and problem must match the checkpointed run's.
	Resume *Checkpoint
	// SeedMapping, when non-nil, warm-starts the search from a known-good
	// mapping instead of a purely random initial point: Mind Mappings
	// repairs it into the space and starts its first descent chain there
	// (the atlas nearest-neighbor path, where a solved neighbor's mapping
	// is re-projected into this problem's space); other searchers ignore
	// it. The RNG stream is drawn identically with or without a seed
	// mapping, so seeding composes with Checkpoint/Resume: a seeded run
	// that is checkpointed and resumed reproduces the uninterrupted seeded
	// trajectory bit-identically. Resume takes precedence — a restored
	// run's chains come from its checkpoint, never from SeedMapping.
	SeedMapping *mapspace.Mapping
	// Scalar forces the scalar (pre-batching) evaluation path everywhere:
	// per-candidate cost-model queries and per-vector surrogate
	// forward/backward passes. The batched kernels accumulate in exactly
	// the same order as the scalar ones, so both paths produce
	// bit-identical trajectories — this knob exists so tests (and
	// benchmark baselines) can prove and measure that, not because
	// results differ.
	Scalar bool
}

// canceled reports whether the caller has canceled the run.
func (c *Context) canceled() bool {
	return c.Ctx != nil && c.Ctx.Err() != nil
}

// evalCtx returns the cancellation context threaded into evaluator calls.
func (c *Context) evalCtx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

func (c *Context) validate() error {
	if c.Space == nil || c.Model == nil {
		return errors.New("search: context needs a map space and a cost model")
	}
	if c.Bound.MinEDP <= 0 {
		return errors.New("search: context bound is not positive")
	}
	if p := c.Model.Problem(); c.Space.Prob.Name != p.Name {
		return fmt.Errorf("search: space problem %q != model problem %q",
			c.Space.Prob.Name, p.Name)
	}
	return nil
}

// Searcher is a mapping-space search method.
type Searcher interface {
	Name() string
	Search(ctx *Context, budget Budget) (Result, error)
}

// SurrogateQuerier abstracts the surrogate's batched query entry points —
// the seam the cross-request inference scheduler (internal/infer) plugs
// into. *surrogate.Surrogate satisfies it directly (in-process queries);
// an infer.Client satisfies it by routing the same calls through a shared
// batcher that coalesces rows across concurrent jobs. Implementations
// must preserve the surrogate's result contract: values and gradients for
// vecs[i] bit-identical to the direct scalar calls (on the default build),
// independent of what other rows execute alongside them.
type SurrogateQuerier interface {
	PredictBatch(vecs [][]float64, eExp, dExp float64, dst []float64) ([]float64, error)
	GradientBatch(vecs [][]float64, eExp, dExp float64, vals []float64, grads [][]float64) ([]float64, [][]float64, error)
}

// tracker enforces the budget and records the best-so-far trajectory. It is
// shared by all searchers so that budget accounting is identical across
// methods. It composes the Context's middleware knobs into two evaluator
// stacks: paid (counter + latency + cache) for reference-model queries and
// free (cache only) for offline trajectory scoring.
type tracker struct {
	ctx       *Context
	ectx      context.Context
	budget    Budget
	start     time.Time
	evals     int
	best      float64
	bestM     mapspace.Mapping
	traj      []Sample
	sinceBest int
	// elapsed0 is wall-clock carried over from a resumed checkpoint, so
	// MaxTime budgets and trajectory timestamps span the whole logical run;
	// lastCheckpoint is the eval count at the last emitted snapshot.
	elapsed0       time.Duration
	lastCheckpoint int

	// paid and free are the scalar evaluator stacks; paidBatch and
	// freeBatch additionally fan batches across the parallel middleware
	// (nil when Parallelism <= 1, which selects the scalar batch loop).
	paid, free           costmodel.Evaluator
	paidBatch, freeBatch costmodel.Evaluator

	// own is the scalar evaluation workspace: with no cache configured,
	// steady-state evaluation allocates nothing (the Cost doubles as the
	// backend's workspace); with a cache, the only per-eval allocation is
	// the key string.
	own costmodel.Cost

	// Per-candidate batch state, reused across batches.
	batchCosts []costmodel.Cost
	batchErrs  []error
}

func newTracker(ctx *Context, budget Budget) *tracker {
	paid := costmodel.WithCache(
		costmodel.WithLatency(
			costmodel.WithCounter(ctx.Model, ctx.Evals),
			ctx.QueryLatency),
		ctx.Cache)
	free := costmodel.WithCache(ctx.Model, ctx.Cache)
	t := &tracker{
		ctx:    ctx,
		ectx:   ctx.evalCtx(),
		budget: budget,
		start:  time.Now(),
		best:   math.Inf(1),
		paid:   paid,
		free:   free,
	}
	if ctx.Parallelism > 1 {
		t.paidBatch = costmodel.WithParallel(paid, ctx.Parallelism)
		t.freeBatch = costmodel.WithParallel(free, ctx.Parallelism)
	}
	return t
}

// exhausted reports whether the budget has run out, the run has converged
// (Patience evaluations without improvement), or the caller canceled the
// run. Every searcher checks it around each paid evaluation, so
// cancellation stops an in-flight search within one evaluation.
func (t *tracker) exhausted() bool {
	if t.ctx.canceled() {
		return true
	}
	if t.budget.MaxEvals > 0 && t.evals >= t.budget.MaxEvals {
		return true
	}
	if t.budget.MaxTime > 0 && t.elapsed() >= t.budget.MaxTime {
		return true
	}
	if t.budget.Patience > 0 && t.sinceBest >= t.budget.Patience {
		return true
	}
	return false
}

// progress returns the fraction of the budget consumed, for annealing
// schedules.
func (t *tracker) progress() float64 {
	p := 0.0
	if t.budget.MaxEvals > 0 {
		p = float64(t.evals) / float64(t.budget.MaxEvals)
	}
	if t.budget.MaxTime > 0 {
		if tp := float64(t.elapsed()) / float64(t.budget.MaxTime); tp > p {
			p = tp
		}
	}
	return math.Min(p, 1)
}

// record notes a candidate with a known true normalized EDP. Improvements
// are always recorded; non-improving samples are thinned by
// Budget.TrajectoryStride.
func (t *tracker) record(m *mapspace.Mapping, edp float64) {
	improved := edp < t.best
	if improved {
		t.best = edp
		t.bestM = m.Clone()
		t.sinceBest = 0
	} else {
		t.sinceBest++
	}
	if stride := t.budget.TrajectoryStride; stride > 1 && !improved && t.evals%stride != 0 {
		return
	}
	elapsed := t.elapsed()
	t.traj = append(t.traj, Sample{Eval: t.evals, Elapsed: elapsed, BestEDP: t.best})
	if t.ctx.Progress != nil {
		t.ctx.Progress(Progress{Eval: t.evals, Best: t.best, Elapsed: elapsed, Improved: improved})
	}
}

// evalValue runs one cost-model query through the paid or free evaluator
// stack into the given workspace, returning the normalized objective
// value. Paid queries pay QueryLatency and count toward Context.Evals;
// cache hits (when a Cache is configured) skip both.
func (t *tracker) evalValue(m *mapspace.Mapping, paid bool, ws *costmodel.Cost) (float64, error) {
	ev := t.free
	if paid {
		ev = t.paid
	}
	if err := ev.EvaluateInto(t.ectx, m, ws); err != nil {
		return 0, err
	}
	return t.ctx.Objective.normalized(ws, t.ctx.Bound), nil
}

// payEval runs a paid reference-cost-model query on m, records it, and
// returns the true normalized EDP. A query interrupted by cancellation
// (mid-latency-stall) records nothing and returns +Inf with a nil error;
// the caller's next exhausted() check stops the run, preserving the
// cancellation contract (best-so-far result, nil error).
func (t *tracker) payEval(m *mapspace.Mapping) (float64, error) {
	val, err := t.evalValue(m, true, &t.own)
	if err != nil {
		if t.ctx.canceled() {
			return math.Inf(1), nil
		}
		return 0, err
	}
	t.evals++
	t.record(m, val)
	return val, nil
}

// scoreSurrogateStep accounts one Mind Mappings surrogate iteration: it
// charges one evaluation against the budget and records the candidate's
// true EDP (obtained through the free scoring path — in the paper's
// methodology trajectory quality is measured offline, not paid for).
func (t *tracker) scoreSurrogateStep(m *mapspace.Mapping) (float64, error) {
	val, err := t.evalValue(m, false, &t.own)
	if err != nil {
		if t.ctx.canceled() {
			return math.Inf(1), nil
		}
		return 0, err
	}
	t.evals++
	t.record(m, val)
	return val, nil
}

// elapsed is wall-clock since the logical start of the run: time in this
// process plus whatever a resumed checkpoint already consumed.
func (t *tracker) elapsed() time.Duration {
	return t.elapsed0 + time.Since(t.start)
}

// result finalizes the run.
func (t *tracker) result(name string) Result {
	return Result{
		Method:     name,
		Best:       t.bestM,
		BestEDP:    t.best,
		Trajectory: t.traj,
		Evals:      t.evals,
		Elapsed:    t.elapsed(),
	}
}
