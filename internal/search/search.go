// Package search implements mapping-space search: the Mind Mappings
// gradient-based method (paper §4.2) and the black-box baselines it is
// evaluated against (§5.2, Appendix A) — simulated annealing, a genetic
// algorithm, DDPG reinforcement learning, and uniform random search.
//
// All methods run under a common budget (fixed number of cost-function
// evaluations for iso-iteration studies, fixed wall-clock for iso-time
// studies) and record best-so-far normalized-EDP trajectories, the raw data
// behind the paper's Figures 5 and 6.
package search

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"mindmappings/internal/mapspace"
	"mindmappings/internal/oracle"
	"mindmappings/internal/timeloop"
)

// Budget bounds a search run. At least one limit must be set; whichever is
// hit first terminates the run.
type Budget struct {
	// MaxEvals caps cost-function evaluations. For the black-box methods an
	// evaluation is one reference-cost-model query; for Mind Mappings it is
	// one surrogate query (§5.2: "In case of Mind Mappings, the cost
	// function is the trained surrogate").
	MaxEvals int
	// MaxTime caps wall-clock time.
	MaxTime time.Duration
	// Patience, when positive, declares convergence after this many
	// consecutive evaluations without improving the best-so-far value and
	// stops the run early (the paper runs Mind Mappings "until
	// convergence", §5.4.2). It composes with the hard limits above; at
	// least one hard limit must still be set.
	Patience int
	// TrajectoryStride thins the recorded trajectory: every improvement is
	// always recorded, plus every stride-th evaluation. 0 or 1 records
	// every evaluation (the historical behavior); larger strides keep
	// million-eval runs from holding million-entry Sample slices. Budget
	// accounting, convergence, and the search itself are unaffected — only
	// Result.Trajectory is thinned.
	TrajectoryStride int
}

func (b Budget) validate() error {
	if b.MaxEvals <= 0 && b.MaxTime <= 0 {
		return errors.New("search: budget needs MaxEvals or MaxTime")
	}
	if b.MaxEvals < 0 || b.MaxTime < 0 || b.Patience < 0 || b.TrajectoryStride < 0 {
		return fmt.Errorf("search: negative budget %+v", b)
	}
	return nil
}

// Sample is one best-so-far trajectory point.
type Sample struct {
	// Eval is the 1-based evaluation index at which this point was taken.
	Eval int
	// Elapsed is wall-clock time since the search started.
	Elapsed time.Duration
	// BestEDP is the lowest true normalized EDP seen so far.
	BestEDP float64
}

// Result summarizes one search run.
type Result struct {
	Method     string
	Best       mapspace.Mapping
	BestEDP    float64 // normalized to the algorithmic minimum
	Trajectory []Sample
	Evals      int
	Elapsed    time.Duration
}

// BestAt returns the best-so-far EDP after the first n evaluations (or the
// final best if n exceeds the trajectory), used to compare methods at a
// fixed iteration count.
func (r *Result) BestAt(n int) float64 {
	best := math.Inf(1)
	for _, s := range r.Trajectory {
		if s.Eval > n {
			break
		}
		best = s.BestEDP
	}
	if math.IsInf(best, 1) {
		return r.BestEDP
	}
	return best
}

// BestAtTime returns the best-so-far EDP at the given elapsed time.
func (r *Result) BestAtTime(d time.Duration) float64 {
	best := math.Inf(1)
	for _, s := range r.Trajectory {
		if s.Elapsed > d {
			break
		}
		best = s.BestEDP
	}
	if math.IsInf(best, 1) {
		return r.BestEDP
	}
	return best
}

// Context carries everything a searcher needs for one problem: the map
// space, the reference cost model (paid queries), the normalization bound,
// and a seed for reproducibility.
type Context struct {
	Space *mapspace.Space
	Model *timeloop.Model
	Bound oracle.Bound
	Seed  int64
	// Objective selects the designer cost function (§2.3); the zero value
	// is EDP, the paper's evaluation objective. Every searcher optimizes
	// it; trajectory values are normalized objective values.
	Objective Objective
	// Ctx, when non-nil, lets callers cancel an in-flight search: every
	// searcher treats cancellation like budget exhaustion, stopping at the
	// next evaluation boundary and returning the best-so-far result with a
	// nil error. Long-running callers (the serve job manager, client
	// disconnects) rely on this for prompt teardown; nil means run to the
	// budget.
	Ctx context.Context
	// Cache, when non-nil, memoizes reference-cost-model evaluations keyed
	// by the mapping's canonical encoding (see CacheKey). Hits skip the
	// cost-model compute and its emulated QueryLatency but still count
	// toward the evaluation budget, so budget accounting is unchanged.
	Cache EvalCache
	// Parallelism, when > 1, fans batched cost-model evaluations
	// (payEvalBatch: GA populations, SA pilot chains, beam expansions,
	// multi-chain gradient scoring) across a bounded pool of that many
	// workers. Results are recorded in candidate order, so trajectories
	// are bit-identical for any Parallelism value; only wall-clock
	// changes. Note that a parallel batch runs to completion, so a budget
	// that expires mid-batch (Patience, MaxTime) can overshoot the
	// model's raw Evals counter by up to one batch — the search budget
	// accounting itself is unaffected. 0 and 1 evaluate sequentially.
	Parallelism int
	// Scalar forces the scalar (pre-batching) evaluation path everywhere:
	// per-candidate cost-model queries and per-vector surrogate
	// forward/backward passes. The batched kernels accumulate in exactly
	// the same order as the scalar ones, so both paths produce
	// bit-identical trajectories — this knob exists so tests (and
	// benchmark baselines) can prove and measure that, not because
	// results differ.
	Scalar bool
}

// EvalCache memoizes cost-model evaluations across search runs sharing a
// problem. Implementations must be safe for concurrent use; the cached Cost
// values are shared and must be treated as immutable.
type EvalCache interface {
	Get(key string) (timeloop.Cost, bool)
	Put(key string, c timeloop.Cost)
}

// CacheKey returns the canonical cache key for a mapping of a space: the
// accelerator spec's binary fingerprint and the algorithm name plus the
// raw bits of the encoded mapping vector, whose problem-id prefix
// distinguishes problems of different shapes. The arch fingerprint
// matters because evaluation costs depend on the accelerator: two
// searches over the same problem on different archs must not share cache
// entries. Keys are stable across a process; the only allocation is the
// returned string (the tracker's hot path reuses scratch buffers via
// appendCacheKey).
func CacheKey(s *mapspace.Space, m *mapspace.Mapping) string {
	key, _ := appendCacheKey(nil, s, m, nil)
	return string(key)
}

// appendCacheKey builds the CacheKey bytes into dst using vec as encode
// scratch, returning both grown buffers so callers can reuse them. Every
// component is either fixed-width binary or length-prefixed, so distinct
// (arch, algorithm, mapping) triples cannot collide.
func appendCacheKey(dst []byte, s *mapspace.Space, m *mapspace.Mapping, vec []float64) ([]byte, []float64) {
	vec = s.EncodeInto(vec, m)
	dst = s.Arch.AppendFingerprint(dst)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s.Prob.Algo.Name)))
	dst = append(dst, s.Prob.Algo.Name...)
	for _, v := range vec {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst, vec
}

// canceled reports whether the caller has canceled the run.
func (c *Context) canceled() bool {
	return c.Ctx != nil && c.Ctx.Err() != nil
}

func (c *Context) validate() error {
	if c.Space == nil || c.Model == nil {
		return errors.New("search: context needs a map space and a cost model")
	}
	if c.Bound.MinEDP <= 0 {
		return errors.New("search: context bound is not positive")
	}
	if c.Space.Prob.Name != c.Model.Prob.Name {
		return fmt.Errorf("search: space problem %q != model problem %q",
			c.Space.Prob.Name, c.Model.Prob.Name)
	}
	return nil
}

// Searcher is a mapping-space search method.
type Searcher interface {
	Name() string
	Search(ctx *Context, budget Budget) (Result, error)
}

// tracker enforces the budget and records the best-so-far trajectory. It is
// shared by all searchers so that budget accounting is identical across
// methods.
type tracker struct {
	ctx       *Context
	budget    Budget
	start     time.Time
	evals     int
	best      float64
	bestM     mapspace.Mapping
	traj      []Sample
	sinceBest int

	// Reusable evaluation scratch: with no cache configured, steady-state
	// evaluation allocates nothing (the Cost doubles as the cost model's
	// workspace); with a cache, the only per-eval allocation is the key
	// string.
	own workerScratch

	// Per-worker scratch for parallel batch evaluation, sized lazily to
	// Context.Parallelism.
	workers []workerScratch
	batchV  []float64
	batchE  []error
}

type workerScratch struct {
	cost timeloop.Cost
	key  []byte
	vec  []float64
}

func newTracker(ctx *Context, budget Budget) *tracker {
	return &tracker{ctx: ctx, budget: budget, start: time.Now(), best: math.Inf(1)}
}

// exhausted reports whether the budget has run out, the run has converged
// (Patience evaluations without improvement), or the caller canceled the
// run. Every searcher checks it around each paid evaluation, so
// cancellation stops an in-flight search within one evaluation.
func (t *tracker) exhausted() bool {
	if t.ctx.canceled() {
		return true
	}
	if t.budget.MaxEvals > 0 && t.evals >= t.budget.MaxEvals {
		return true
	}
	if t.budget.MaxTime > 0 && time.Since(t.start) >= t.budget.MaxTime {
		return true
	}
	if t.budget.Patience > 0 && t.sinceBest >= t.budget.Patience {
		return true
	}
	return false
}

// progress returns the fraction of the budget consumed, for annealing
// schedules.
func (t *tracker) progress() float64 {
	p := 0.0
	if t.budget.MaxEvals > 0 {
		p = float64(t.evals) / float64(t.budget.MaxEvals)
	}
	if t.budget.MaxTime > 0 {
		if tp := float64(time.Since(t.start)) / float64(t.budget.MaxTime); tp > p {
			p = tp
		}
	}
	return math.Min(p, 1)
}

// record notes a candidate with a known true normalized EDP. Improvements
// are always recorded; non-improving samples are thinned by
// Budget.TrajectoryStride.
func (t *tracker) record(m *mapspace.Mapping, edp float64) {
	improved := edp < t.best
	if improved {
		t.best = edp
		t.bestM = m.Clone()
		t.sinceBest = 0
	} else {
		t.sinceBest++
	}
	if stride := t.budget.TrajectoryStride; stride > 1 && !improved && t.evals%stride != 0 {
		return
	}
	t.traj = append(t.traj, Sample{Eval: t.evals, Elapsed: time.Since(t.start), BestEDP: t.best})
}

// evalValue runs one cost-model query through the context's eval cache
// (when configured) using the given scratch, returning the normalized
// objective value. paid queries go through Model.EvaluateInto (counting
// toward the model's counter and paying QueryLatency); free scoring
// queries use EvaluateRawInto. Cache hits skip the model entirely; cache
// misses store a detached Clone because ws is reused by the next call.
func (t *tracker) evalValue(m *mapspace.Mapping, paid bool, ws *workerScratch) (float64, error) {
	eval := func(c *timeloop.Cost) error {
		if paid {
			return t.ctx.Model.EvaluateInto(m, c)
		}
		return t.ctx.Model.EvaluateRawInto(m, c)
	}
	if t.ctx.Cache == nil {
		if err := eval(&ws.cost); err != nil {
			return 0, err
		}
		return t.ctx.Objective.normalized(&ws.cost, t.ctx.Bound), nil
	}
	ws.key, ws.vec = appendCacheKey(ws.key[:0], t.ctx.Space, m, ws.vec)
	key := string(ws.key)
	if cost, ok := t.ctx.Cache.Get(key); ok {
		return t.ctx.Objective.normalized(&cost, t.ctx.Bound), nil
	}
	if err := eval(&ws.cost); err != nil {
		return 0, err
	}
	t.ctx.Cache.Put(key, ws.cost.Clone())
	return t.ctx.Objective.normalized(&ws.cost, t.ctx.Bound), nil
}

// payEval runs a paid reference-cost-model query on m, records it, and
// returns the true normalized EDP.
func (t *tracker) payEval(m *mapspace.Mapping) (float64, error) {
	val, err := t.evalValue(m, true, &t.own)
	if err != nil {
		return 0, err
	}
	t.evals++
	t.record(m, val)
	return val, nil
}

// scoreSurrogateStep accounts one Mind Mappings surrogate iteration: it
// charges one evaluation against the budget and records the candidate's
// true EDP (obtained through the free scoring path — in the paper's
// methodology trajectory quality is measured offline, not paid for).
func (t *tracker) scoreSurrogateStep(m *mapspace.Mapping) (float64, error) {
	val, err := t.evalValue(m, false, &t.own)
	if err != nil {
		return 0, err
	}
	t.evals++
	t.record(m, val)
	return val, nil
}

// result finalizes the run.
func (t *tracker) result(name string) Result {
	return Result{
		Method:     name,
		Best:       t.bestM,
		BestEDP:    t.best,
		Trajectory: t.traj,
		Evals:      t.evals,
		Elapsed:    time.Since(t.start),
	}
}
