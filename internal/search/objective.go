package search

import (
	"fmt"
	"strings"

	"mindmappings/internal/costmodel"
	"mindmappings/internal/oracle"
)

// Objective selects the optimization target (paper §2.3: "It is up to the
// designer to formulate the cost function based on the design criteria").
// All objectives are normalized against the corresponding combination of
// the algorithmic-minimum components so values remain comparable across
// problems.
type Objective int

const (
	// ObjectiveEDP minimizes energy x delay, the paper's evaluation
	// objective (§5.1.2).
	ObjectiveEDP Objective = iota
	// ObjectiveED2P minimizes energy x delay², weighting performance more
	// heavily.
	ObjectiveED2P
	// ObjectiveEnergy minimizes energy alone.
	ObjectiveEnergy
	// ObjectiveDelay minimizes execution cycles alone.
	ObjectiveDelay
)

// ParseObjective maps a user-facing objective name ("edp", "ed2p",
// "energy", "delay"; case-insensitive, empty means EDP) onto an Objective.
// The CLI and the serve API share this parsing.
func ParseObjective(name string) (Objective, error) {
	switch strings.ToLower(name) {
	case "edp", "":
		return ObjectiveEDP, nil
	case "ed2p":
		return ObjectiveED2P, nil
	case "energy":
		return ObjectiveEnergy, nil
	case "delay":
		return ObjectiveDelay, nil
	}
	return 0, fmt.Errorf("search: unknown objective %q (want edp, ed2p, energy, delay)", name)
}

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case ObjectiveEDP:
		return "EDP"
	case ObjectiveED2P:
		return "ED2P"
	case ObjectiveEnergy:
		return "energy"
	case ObjectiveDelay:
		return "delay"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// normalized converts a cost into the objective's normalized scalar
// (>= ~1, relative to the algorithmic-minimum components).
func (o Objective) normalized(c *costmodel.Cost, b oracle.Bound) float64 {
	e := c.TotalEnergyPJ / b.MinEnergyPJ
	d := c.Cycles / b.MinCycles
	switch o {
	case ObjectiveED2P:
		return e * d * d
	case ObjectiveEnergy:
		return e
	case ObjectiveDelay:
		return d
	default:
		return e * d
	}
}
