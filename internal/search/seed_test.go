package search

import (
	"encoding/json"
	"testing"
)

// TestSeedMappingWarmStart pins that a seed mapping actually changes where
// the descent begins: two runs with the same RNG seed, one warm-started
// and one cold, diverge, while two identically seeded warm runs are
// bit-identical.
func TestSeedMappingWarmStart(t *testing.T) {
	const seed, evals = 5, 300
	mm := MindMappings{Surrogate: conv1dSurrogate(t)}

	cold, err := mm.Search(conv1dContext(t, seed), Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}

	warmCtx := func() *Context {
		ctx := conv1dContext(t, seed)
		m := ctx.Space.Minimal()
		ctx.SeedMapping = &m
		return ctx
	}
	warm1, err := mm.Search(warmCtx(), Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := mm.Search(warmCtx(), Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	if warm1.BestEDP != warm2.BestEDP || warm1.Best.String() != warm2.Best.String() {
		t.Fatal("identically seeded warm runs diverged")
	}
	if len(warm1.Trajectory) != len(warm2.Trajectory) {
		t.Fatal("warm trajectories differ in length")
	}
	for i := range warm1.Trajectory {
		if warm1.Trajectory[i].Eval != warm2.Trajectory[i].Eval ||
			warm1.Trajectory[i].BestEDP != warm2.Trajectory[i].BestEDP {
			t.Fatalf("warm trajectories diverged at sample %d", i)
		}
	}
	diverged := cold.BestEDP != warm1.BestEDP || cold.Best.String() != warm1.Best.String()
	for i := 0; !diverged && i < len(cold.Trajectory) && i < len(warm1.Trajectory); i++ {
		diverged = cold.Trajectory[i].BestEDP != warm1.Trajectory[i].BestEDP
	}
	if !diverged {
		t.Fatal("seed mapping had no effect: warm run reproduced the cold run exactly")
	}
}

// TestSeededCheckpointResumeBitCompatible is the warm-start counterpart of
// TestCheckpointResumeBitCompatible: a warm-started run interrupted at a
// checkpoint and resumed (with the seed mapping still present in the
// context, as the service journal recovery path supplies it) reproduces
// the uninterrupted warm-started trajectory bit for bit. This holds
// because seeding replaces chain 0's start after all random draws are
// made, leaving the RNG stream position untouched, and because Resume
// takes precedence over SeedMapping.
func TestSeededCheckpointResumeBitCompatible(t *testing.T) {
	const seed, evals, every = 11, 600, 100
	mm := MindMappings{Surrogate: conv1dSurrogate(t)}
	seededCtx := func() *Context {
		ctx := conv1dContext(t, seed)
		m := ctx.Space.Minimal()
		ctx.SeedMapping = &m
		return ctx
	}

	var cks []*Checkpoint
	full := seededCtx()
	full.CheckpointEvery = every
	full.Checkpoint = func(c *Checkpoint) { cks = append(cks, c.Clone()) }
	want, err := mm.Search(full, Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) < 3 {
		t.Fatalf("expected periodic checkpoints, got %d", len(cks))
	}

	raw, err := json.Marshal(cks[2])
	if err != nil {
		t.Fatal(err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		t.Fatal(err)
	}

	resumed := seededCtx()
	resumed.Resume = &ck
	got, err := mm.Search(resumed, Budget{MaxEvals: evals})
	if err != nil {
		t.Fatal(err)
	}
	if got.Evals != want.Evals || got.BestEDP != want.BestEDP || got.Best.String() != want.Best.String() {
		t.Fatalf("seeded resume diverged: evals %d/%d best %v/%v",
			got.Evals, want.Evals, got.BestEDP, want.BestEDP)
	}
	if len(got.Trajectory) != len(want.Trajectory) {
		t.Fatalf("trajectory lengths diverged: %d vs %d", len(got.Trajectory), len(want.Trajectory))
	}
	for i := range want.Trajectory {
		if got.Trajectory[i].Eval != want.Trajectory[i].Eval ||
			got.Trajectory[i].BestEDP != want.Trajectory[i].BestEDP {
			t.Fatalf("seeded resume trajectory diverged at sample %d: %+v vs %+v",
				i, got.Trajectory[i], want.Trajectory[i])
		}
	}
}

// TestSeedMappingRepairsInvalidSeed pins the defensive contract: a seed
// mapping that is not a member of the target space (the atlas re-projection
// path can hand over anything) is repaired, never evaluated raw.
func TestSeedMappingRepairsInvalidSeed(t *testing.T) {
	ctx := conv1dContext(t, 7)
	bad := ctx.Space.Minimal()
	bad.Spatial[0] = 1 << 20 // absurd parallelism: not a member
	ctx.SeedMapping = &bad
	res, err := (MindMappings{Surrogate: conv1dSurrogate(t)}).Search(ctx, Budget{MaxEvals: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Space.IsMember(&res.Best); err != nil {
		t.Fatalf("best mapping invalid after seeding with garbage: %v", err)
	}
}
