package search

import (
	"mindmappings/internal/arch"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/stats"
)

// PrunedExhaustive is the pruned-search mapper style of Timeloop and
// dMazeRunner (paper Table 2): systematically enumerate tile factorizations
// with buffer-capacity pruning, combined with loop-order enumeration (full
// for small dimension counts, sampled otherwise) and footprint-derived
// buffer allocations. On small map spaces it visits every pruned point and
// therefore finds the achievable optimum — which makes it the test oracle
// for validating how close the heuristic methods land; on large spaces the
// budget cuts it off, illustrating why the paper calls exhaustive
// techniques ineffective (§1: "combinatorial explosion of possible
// mappings").
type PrunedExhaustive struct {
	// MaxOrdersPerLevel bounds how many loop orders are tried per tiling
	// when the full permutation count exceeds it (orders are then sampled).
	// Defaults to 24.
	MaxOrdersPerLevel int
}

// Name implements Searcher.
func (PrunedExhaustive) Name() string { return "Exhaustive" }

// Search implements Searcher.
func (e PrunedExhaustive) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	maxOrders := e.MaxOrdersPerLevel
	if maxOrders <= 0 {
		maxOrders = 24
	}
	rng := stats.NewRNG(ctx.Seed + 811)
	t := newTracker(ctx, budget)
	space := ctx.Space
	d := space.NumDims()

	// Pre-compute the loop orders to sweep: all permutations when small,
	// a deterministic sample otherwise. The same set is reused at every
	// level (sweeping level orders jointly would cube the count).
	orders := allPermutations(d, maxOrders, rng)

	// Depth-first enumeration of per-dimension chains with incremental
	// spatial-budget pruning; buffer-fit pruning happens per complete
	// tiling (footprints are not dimension-separable because of halos).
	m := space.Minimal()
	var assign func(dim, peBudget int) error
	stop := false
	assign = func(dim, peBudget int) error {
		if stop || t.exhausted() {
			stop = true
			return nil
		}
		if dim == d {
			return e.sweepOrders(ctx, t, &m, orders, &stop)
		}
		for _, c := range space.Chains(dim) {
			if c[mapspace.ChainSpatial] > peBudget {
				continue // spatial-budget pruning
			}
			m.SetChain(dim, c)
			if err := assign(dim+1, peBudget/c[mapspace.ChainSpatial]); err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
		return nil
	}
	if err := assign(0, ctx.Space.Arch.NumPEs); err != nil {
		return Result{}, err
	}
	return t.result(e.Name()), nil
}

// sweepOrders evaluates one complete tiling under each candidate loop
// order, with capacity pruning (tile-does-not-fit points are skipped
// without an evaluation, the "pruned" part of pruned search).
func (e PrunedExhaustive) sweepOrders(ctx *Context, t *tracker, m *mapspace.Mapping, orders [][]int, stop *bool) error {
	candidate := m.Clone()
	// Allocations follow footprints exactly (the pruned-search convention:
	// buffers sized to the tiles, which is also the allocation-energy
	// optimum); TightenAlloc doubles as the capacity-pruning check.
	if !ctx.Space.TightenAlloc(&candidate) {
		return nil
	}
	// Sweep loop orders: jointly across the three levels when the
	// combination count is small (needed for true optimality on tiny
	// spaces), otherwise the same order at every level.
	n := len(orders)
	if n*n*n <= 4*len(orders)*3 || n*n*n <= 64 {
		for _, o2 := range orders {
			for _, o1 := range orders {
				for _, o0 := range orders {
					if t.exhausted() {
						*stop = true
						return nil
					}
					copy(candidate.Order[arch.DRAM], o2)
					copy(candidate.Order[arch.L2], o1)
					copy(candidate.Order[arch.L1], o0)
					if _, err := t.payEval(&candidate); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, order := range orders {
		if t.exhausted() {
			*stop = true
			return nil
		}
		for l := arch.L1; l < arch.NumLevels; l++ {
			copy(candidate.Order[l], order)
		}
		if _, err := t.payEval(&candidate); err != nil {
			return err
		}
	}
	return nil
}

// allPermutations returns every permutation of [0,d) when their count is at
// most limit, else limit random distinct-ish permutations.
func allPermutations(d, limit int, rng interface{ Perm(int) []int }) [][]int {
	count := 1
	for i := 2; i <= d; i++ {
		count *= i
		if count > limit {
			break
		}
	}
	if count <= limit {
		var out [][]int
		perm := make([]int, d)
		for i := range perm {
			perm[i] = i
		}
		var heap func(k int)
		heap = func(k int) {
			if k == 1 {
				out = append(out, append([]int(nil), perm...))
				return
			}
			for i := 0; i < k; i++ {
				heap(k - 1)
				if k%2 == 0 {
					perm[i], perm[k-1] = perm[k-1], perm[i]
				} else {
					perm[0], perm[k-1] = perm[k-1], perm[0]
				}
			}
		}
		heap(d)
		return out
	}
	out := make([][]int, 0, limit)
	for i := 0; i < limit; i++ {
		out = append(out, rng.Perm(d))
	}
	return out
}
