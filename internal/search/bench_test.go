package search

import (
	"runtime"
	"testing"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/costmodel"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/obs"
	"mindmappings/internal/oracle"
	"mindmappings/internal/stats"
)

// End-to-end search throughput benchmarks: evaluations per second through
// the full tracker pipeline (cost model + budget accounting + trajectory)
// for the scalar path, the batched path, and the batched path with a
// worker pool. BENCH_search.json records these as the repo's perf
// trajectory; b.ReportMetric exposes evals/s directly.

func benchSearchContext(b *testing.B, seed int64) *Context {
	b.Helper()
	p, err := loopnest.NewCNNProblem("bench", 16, 256, 256, 14, 14, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.Default(2)
	space, err := mapspace.New(a, p)
	if err != nil {
		b.Fatal(err)
	}
	model, err := costmodel.New("timeloop", a, p)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := oracle.Compute(a, p)
	if err != nil {
		b.Fatal(err)
	}
	return &Context{Space: space, Model: model, Bound: bound, Seed: seed}
}

func runSearchBench(b *testing.B, mk func(seed int64) *Context) {
	const evals = 2000
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		ctx := mk(int64(i))
		res, err := GeneticAlgorithm{}.Search(ctx, Budget{MaxEvals: evals})
		if err != nil {
			b.Fatal(err)
		}
		total += res.Evals
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkSearchGA(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		runSearchBench(b, func(seed int64) *Context {
			ctx := benchSearchContext(b, seed)
			ctx.Scalar = true
			return ctx
		})
	})
	b.Run("batch", func(b *testing.B) {
		runSearchBench(b, func(seed int64) *Context {
			return benchSearchContext(b, seed)
		})
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		runSearchBench(b, func(seed int64) *Context {
			ctx := benchSearchContext(b, seed)
			ctx.Parallelism = workers
			return ctx
		})
	})
}

// BenchmarkSearchGAInstrumented runs the same GA workload as
// BenchmarkSearchGA/batch with the serving stack's full observability
// load attached: a sampled eval-latency histogram (1-in-64, the service's
// rate), a live Progress hook opening a stride span and publishing a
// trajectory event into a bounded stream per recorded sample — exactly
// what a search job pays when /metrics and /events are being watched.
// BENCH_search.json records this against the uninstrumented row; the gap
// is the instrumentation overhead and must stay within noise.
func BenchmarkSearchGAInstrumented(b *testing.B) {
	hist := obs.NewHistogram(obs.ExpBuckets(100e-9, 4, 14))
	stream := obs.NewStream[Progress](256)
	runSearchBench(b, func(seed int64) *Context {
		ctx := benchSearchContext(b, seed)
		ctx.Model = costmodel.WithTiming(ctx.Model, 64, func(d time.Duration) {
			hist.Observe(d.Seconds())
		})
		trace := obs.NewTrace("bench", "search-job")
		var stride *obs.Span
		ctx.Progress = func(p Progress) {
			stride.End()
			stride = trace.Root().StartChild("stride")
			stride.Set("eval", float64(p.Eval))
			stream.Publish(p)
		}
		return ctx
	})
}

// BenchmarkSearchGAQueryLatency replays the paper's setting, where each
// reference-cost-model query takes real time (Timeloop queries take
// milliseconds; 100µs emulated here). This is where Parallelism pays:
// the pool overlaps the latency of a whole offspring cohort.
func BenchmarkSearchGAQueryLatency(b *testing.B) {
	const evals = 400
	for _, mode := range []string{"serial", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := benchSearchContext(b, int64(i))
				ctx.QueryLatency = 100 * time.Microsecond
				if mode == "parallel" {
					// Latency-bound, not CPU-bound: a fixed pool overlaps
					// the emulated query latency even on one core.
					ctx.Parallelism = 8
				}
				res, err := GeneticAlgorithm{}.Search(ctx, Budget{MaxEvals: evals})
				if err != nil {
					b.Fatal(err)
				}
				total += res.Evals
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkPayEvalBatch isolates the tracker's batch pipeline (no search
// heuristics): cost of evaluating a 64-candidate batch per candidate.
func BenchmarkPayEvalBatch(b *testing.B) {
	for _, mode := range []string{"scalar", "batch", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			ctx := benchSearchContext(b, 1)
			switch mode {
			case "scalar":
				ctx.Scalar = true
			case "parallel":
				ctx.Parallelism = 4
			}
			rng := stats.NewRNG(2)
			cand := make([]mapspace.Mapping, 64)
			for i := range cand {
				cand[i] = ctx.Space.Random(rng)
			}
			t := newTracker(ctx, Budget{MaxEvals: 1 << 30})
			var vals []float64
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += len(cand) {
				if vals, err = t.payEvalBatch(cand, vals); err != nil {
					b.Fatal(err)
				}
				t.traj = t.traj[:0] // keep the trajectory from growing unboundedly
			}
		})
	}
}

// BenchmarkEvalCacheHit measures the tracker pipeline with a shared eval
// cache fully warm: key build + lookup + copy per candidate (the key
// string is the only allocation; the middleware bench in
// internal/costmodel isolates the raw hit cost).
func BenchmarkEvalCacheHit(b *testing.B) {
	ctx := benchSearchContext(b, 1)
	ctx.Cache = newMapCache()
	rng := stats.NewRNG(3)
	cand := make([]mapspace.Mapping, 64)
	for i := range cand {
		cand[i] = ctx.Space.Random(rng)
	}
	t := newTracker(ctx, Budget{MaxEvals: 1 << 30})
	var vals []float64
	var err error
	if vals, err = t.payEvalBatch(cand, vals); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(cand) {
		if vals, err = t.payEvalBatch(cand, vals); err != nil {
			b.Fatal(err)
		}
		t.traj = t.traj[:0] // keep the trajectory from growing unboundedly
	}
}
