package search

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"mindmappings/internal/mapspace"
)

// Checkpoint is a resumable snapshot of an in-flight search: the tracker's
// budget and best-so-far state plus the searcher's own private state. It is
// JSON-serializable end to end (mapspace.Mapping marshals directly), so the
// service can journal snapshots to disk and resume a killed job in a fresh
// process with a bit-compatible trajectory suffix.
//
// A checkpoint is only ever taken at an iteration boundary the emitting
// searcher knows how to re-enter; Resume with a checkpoint from a different
// method (or a searcher that never emits one) is an error.
type Checkpoint struct {
	// Method is the emitting searcher's Name(); Resume refuses mismatches.
	Method string `json:"method"`
	// Eval and Elapsed are the budget consumed so far; a resumed run
	// continues the count (MaxEvals) and the clock (MaxTime) rather than
	// restarting them.
	Eval    int           `json:"eval"`
	Elapsed time.Duration `json:"elapsed_ns"`
	// BestEDP and Best are the best-so-far value and mapping. BestEDP is
	// stored as a string ("+Inf" is not representable in JSON numbers and a
	// checkpoint before the first completed evaluation legitimately has it).
	BestEDP   jsonFloat         `json:"best_edp"`
	Best      *mapspace.Mapping `json:"best,omitempty"`
	SinceBest int               `json:"since_best"`
	// Trajectory is the recorded best-so-far history up to the snapshot.
	Trajectory []Sample `json:"trajectory,omitempty"`
	// RNGDraws is the searcher's RNG stream position: the number of draws
	// consumed from its seeded source (see stats.CountedSource). The seed
	// itself comes from the resuming Context, which must match the
	// original's.
	RNGDraws int64 `json:"rng_draws"`
	// State is the searcher-specific snapshot (for Mind Mappings: iteration
	// number, chain positions, annealing temperature).
	State json.RawMessage `json:"state,omitempty"`
}

// jsonFloat is a float64 that survives JSON round-trips of ±Inf and NaN by
// falling back to string encoding for the non-finite values.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(raw []byte) error {
	var v float64
	if err := json.Unmarshal(raw, &v); err == nil {
		*f = jsonFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf", "Inf":
		*f = jsonFloat(math.Inf(1))
	case "-Inf":
		*f = jsonFloat(math.Inf(-1))
	case "NaN":
		*f = jsonFloat(math.NaN())
	default:
		return fmt.Errorf("search: bad checkpoint float %q", s)
	}
	return nil
}

// Clone deep-copies the checkpoint so snapshots handed to asynchronous
// consumers (journal writers) never alias searcher-owned buffers.
func (c *Checkpoint) Clone() *Checkpoint {
	if c == nil {
		return nil
	}
	out := *c
	if c.Best != nil {
		b := c.Best.Clone()
		out.Best = &b
	}
	out.Trajectory = append([]Sample(nil), c.Trajectory...)
	out.State = append(json.RawMessage(nil), c.State...)
	return &out
}

// validateResume checks a checkpoint against the resuming searcher.
func (c *Checkpoint) validateResume(method string) error {
	if c.Method != method {
		return fmt.Errorf("search: checkpoint from method %q cannot resume %q", c.Method, method)
	}
	if c.Eval < 0 || c.RNGDraws < 0 || c.Elapsed < 0 {
		return errors.New("search: corrupt checkpoint (negative position)")
	}
	return nil
}

// checkpointDue reports whether a snapshot should be emitted at the current
// eval count: the hook is installed and CheckpointEvery evals have passed
// since the last emission (or since the run/resume point).
func (t *tracker) checkpointDue() bool {
	if t.ctx.Checkpoint == nil {
		return false
	}
	every := t.ctx.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return t.evals-t.lastCheckpoint >= every
}

// DefaultCheckpointEvery is the eval interval between snapshots when the
// Context installs a Checkpoint hook without choosing one. Snapshots cost a
// deep copy of the trajectory plus whatever the hook does (the service
// writes a journal file), so the default trades at most a few snapshots per
// second against losing at most this much work to a crash.
const DefaultCheckpointEvery = 2048

// emitCheckpoint snapshots tracker state, attaches the searcher's private
// state and RNG position, and hands the result to the Context hook. The
// hook runs on the searcher goroutine; implementations must be quick.
func (t *tracker) emitCheckpoint(method string, rngDraws int64, state any) error {
	if t.ctx.Checkpoint == nil {
		return nil
	}
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("search: marshaling checkpoint state: %w", err)
	}
	ck := &Checkpoint{
		Method:     method,
		Eval:       t.evals,
		Elapsed:    t.elapsed(),
		BestEDP:    jsonFloat(t.best),
		SinceBest:  t.sinceBest,
		Trajectory: append([]Sample(nil), t.traj...),
		RNGDraws:   rngDraws,
		State:      raw,
	}
	if !math.IsInf(t.best, 1) {
		b := t.bestM.Clone()
		ck.Best = &b
	}
	t.lastCheckpoint = t.evals
	t.ctx.Checkpoint(ck)
	return nil
}

// restore rewinds the tracker to a checkpoint: budget position, best-so-far
// state, and trajectory prefix. The searcher separately restores its own
// State and RNG position.
func (t *tracker) restore(c *Checkpoint) {
	t.evals = c.Eval
	t.elapsed0 = c.Elapsed
	t.best = float64(c.BestEDP)
	if c.Best != nil {
		t.bestM = c.Best.Clone()
	}
	t.sinceBest = c.SinceBest
	t.traj = append([]Sample(nil), c.Trajectory...)
	t.lastCheckpoint = c.Eval
}
