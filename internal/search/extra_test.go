package search

import (
	"math"
	"testing"
	"time"
)

// Tests for the extension searchers: beam search (paper Table 2's
// Tiramisu/Adams strategy) and surrogate-assisted simulated annealing
// (§5.4.2's hybrid).

func TestBeamSearchRespectsBudget(t *testing.T) {
	ctx := conv1dContext(t, 301)
	res, err := BeamSearch{}.Search(ctx, Budget{MaxEvals: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 150 {
		t.Fatalf("beam used %d evals", res.Evals)
	}
	if err := ctx.Space.IsMember(&res.Best); err != nil {
		t.Fatalf("beam best invalid: %v", err)
	}
	if res.Method != "Beam" {
		t.Fatalf("method name %q", res.Method)
	}
}

func TestBeamSearchImproves(t *testing.T) {
	ctx := conv1dContext(t, 303)
	mean := randomMeanEDP(t, ctx, 50)
	res, err := BeamSearch{}.Search(ctx, Budget{MaxEvals: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestEDP > mean*0.5 {
		t.Fatalf("beam best %v did not beat mean random %v", res.BestEDP, mean)
	}
	// Monotone best-so-far.
	prev := math.Inf(1)
	for _, s := range res.Trajectory {
		if s.BestEDP > prev {
			t.Fatal("trajectory not monotone")
		}
		prev = s.BestEDP
	}
}

func TestBeamSearchTinyBudget(t *testing.T) {
	ctx := conv1dContext(t, 305)
	res, err := BeamSearch{Width: 64, Branch: 16}.Search(ctx, Budget{MaxEvals: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 10 {
		t.Fatalf("evals = %d", res.Evals)
	}
}

func TestBeamSearchRejectsBadBudget(t *testing.T) {
	ctx := conv1dContext(t, 306)
	if _, err := (BeamSearch{}).Search(ctx, Budget{}); err == nil {
		t.Fatal("accepted empty budget")
	}
}

func TestSurrogateSARequiresSurrogate(t *testing.T) {
	ctx := conv1dContext(t, 311)
	if _, err := (SurrogateSA{}).Search(ctx, Budget{MaxEvals: 10}); err == nil {
		t.Fatal("accepted nil surrogate")
	}
}

func TestSurrogateSARespectsBudgetAndValidity(t *testing.T) {
	ctx := conv1dContext(t, 313)
	s := SurrogateSA{Surrogate: conv1dSurrogate(t)}
	res, err := s.Search(ctx, Budget{MaxEvals: 120})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 120 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if err := ctx.Space.IsMember(&res.Best); err != nil {
		t.Fatalf("best invalid: %v", err)
	}
	if res.BestEDP < 1 {
		t.Fatalf("normalized EDP %v below bound", res.BestEDP)
	}
}

func TestSurrogateSACheaperPerStepThanPaidSA(t *testing.T) {
	// With emulated reference-model latency, surrogate-assisted SA should
	// complete far more steps per unit time than plain SA — the paper's
	// §5.4.2 argument for hybrid methods.
	ctx := conv1dContext(t, 317)
	ctx.QueryLatency = 2 * time.Millisecond
	paid, err := SimulatedAnnealing{}.Search(ctx, Budget{MaxTime: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := conv1dContext(t, 317)
	ctx2.QueryLatency = 2 * time.Millisecond
	hybrid, err := SurrogateSA{Surrogate: conv1dSurrogate(t)}.Search(ctx2, Budget{MaxTime: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Evals < 3*paid.Evals {
		t.Fatalf("hybrid SA evals %d not clearly above paid SA evals %d", hybrid.Evals, paid.Evals)
	}
}

func TestMindMappingsAblationKnobs(t *testing.T) {
	sur := conv1dSurrogate(t)
	for _, cfg := range []MindMappings{
		{Surrogate: sur, NoInjection: true},
		{Surrogate: sur, NoPrecondition: true},
		{Surrogate: sur, NoInjection: true, NoPrecondition: true},
	} {
		ctx := conv1dContext(t, 331)
		res, err := cfg.Search(ctx, Budget{MaxEvals: 80})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evals != 80 {
			t.Fatalf("evals = %d", res.Evals)
		}
		if err := ctx.Space.IsMember(&res.Best); err != nil {
			t.Fatalf("ablated MM best invalid: %v", err)
		}
	}
}

func TestMindMappingsNoInjectionIsDeterministicDescent(t *testing.T) {
	sur := conv1dSurrogate(t)
	a, err := MindMappings{Surrogate: sur, NoInjection: true}.Search(conv1dContext(t, 337), Budget{MaxEvals: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MindMappings{Surrogate: sur, NoInjection: true}.Search(conv1dContext(t, 337), Budget{MaxEvals: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestEDP != b.BestEDP {
		t.Fatalf("pure descent not deterministic: %v vs %v", a.BestEDP, b.BestEDP)
	}
}

func TestPatienceConvergence(t *testing.T) {
	// Random search on a tiny space quickly stops improving; patience must
	// cut the run off well before the hard eval cap.
	ctx := conv1dContext(t, 601)
	res, err := RandomSearch{}.Search(ctx, Budget{MaxEvals: 100000, Patience: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals >= 100000 {
		t.Fatal("patience did not trigger")
	}
	// The last 50 evaluations must show no improvement.
	n := len(res.Trajectory)
	if res.Trajectory[n-1].BestEDP != res.Trajectory[n-51].BestEDP {
		t.Fatal("run stopped while still improving")
	}
}

func TestPatienceValidation(t *testing.T) {
	ctx := conv1dContext(t, 603)
	if _, err := (RandomSearch{}).Search(ctx, Budget{MaxEvals: 10, Patience: -1}); err == nil {
		t.Fatal("negative patience accepted")
	}
	// Patience alone (no hard limit) is rejected: it may never trigger.
	if _, err := (RandomSearch{}).Search(ctx, Budget{Patience: 10}); err == nil {
		t.Fatal("patience-only budget accepted")
	}
}
