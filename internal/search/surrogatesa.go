package search

import (
	"errors"
	"math"

	"mindmappings/internal/mapspace"
	"mindmappings/internal/stats"
	"mindmappings/internal/surrogate"
)

// SurrogateSA is simulated annealing whose energy function is the trained
// surrogate instead of the reference cost model — the hybrid the paper
// discusses in §5.4.2: "it is possible to improve traditional black-box
// methods in terms of time-per-step by using a surrogate ... While such
// surrogates are not beneficial in finding better mappings (i.e., will not
// improve iso-iteration search quality), they enable more cost function
// queries per unit time, which improves iso-time search quality."
//
// Budget accounting mirrors Mind Mappings: each Metropolis step costs one
// cheap surrogate query; the trajectory is scored offline with the true
// cost model. Comparing SurrogateSA against MindMappings isolates the value
// of the *gradients* — both pay surrogate prices, only MM has directions.
type SurrogateSA struct {
	// Surrogate is the trained Phase-1 model. Required.
	Surrogate *surrogate.Surrogate
	// PilotMoves estimates the cost-delta scale (default 40).
	PilotMoves int
	// Queries, when non-nil, routes surrogate queries through an
	// alternative querier (see MindMappings.Queries): the pilot chain as
	// one batch and each Metropolis step as a batch of one row, so a
	// service batcher can coalesce this job's steps with other tenants'.
	// Results are identical either way. Nil queries the Surrogate
	// directly via the scalar path.
	Queries SurrogateQuerier
}

// Name implements Searcher.
func (SurrogateSA) Name() string { return "SA+f*" }

// Search implements Searcher.
func (s SurrogateSA) Search(ctx *Context, budget Budget) (Result, error) {
	if err := ctx.validate(); err != nil {
		return Result{}, err
	}
	if err := budget.validate(); err != nil {
		return Result{}, err
	}
	if s.Surrogate == nil {
		return Result{}, errors.New("search: SurrogateSA requires a trained surrogate")
	}
	if s.Surrogate.Net.InDim() != ctx.Space.VectorLen() {
		return Result{}, errors.New("search: surrogate input width does not match this map space")
	}
	pilot := s.PilotMoves
	if pilot <= 0 {
		pilot = 40
	}

	rng := stats.NewRNG(ctx.Seed + 701)
	t := newTracker(ctx, budget)

	eExp, dExp := objectiveExponents(ctx.Objective)
	// With an external querier, per-step predictions go through it as
	// one-row batches (bit-identical to PredictScalar on the default
	// build) so a shared batcher can coalesce them across jobs; the
	// reused buffers keep the steady-state loop allocation-free.
	stepVec := make([][]float64, 1)
	stepVal := make([]float64, 1)
	predict := func(m *mapspace.Mapping) (float64, error) {
		if s.Queries != nil && !ctx.Scalar {
			stepVec[0] = ctx.Space.EncodeInto(stepVec[0], m)
			vals, err := s.Queries.PredictBatch(stepVec, eExp, dExp, stepVal)
			if err != nil {
				return 0, err
			}
			return vals[0], nil
		}
		return s.Surrogate.PredictScalar(ctx.Space.Encode(m), eExp, dExp)
	}

	cur := ctx.Space.Random(rng)
	curE, err := predict(&cur)
	if err != nil {
		return Result{}, err
	}
	if _, err := t.scoreSurrogateStep(&cur); err != nil {
		return Result{}, err
	}

	// Pilot chain: all moves are accepted, so the chain is rng-only and
	// can be generated up front, predicted with one surrogate batch, and
	// scored with one tracker batch — same results as the scalar loop,
	// amortized query cost.
	var deltas stats.Running
	if !t.exhausted() {
		chain := make([]mapspace.Mapping, 0, pilot)
		prev := &cur
		for i := 0; i < t.remainingEvals(pilot); i++ {
			chain = append(chain, ctx.Space.Perturb(rng, prev))
			prev = &chain[len(chain)-1]
		}
		var preds []float64
		if ctx.Scalar {
			for i := range chain {
				p, err := predict(&chain[i])
				if err != nil {
					return Result{}, err
				}
				preds = append(preds, p)
			}
		} else {
			vecs := make([][]float64, len(chain))
			for i := range chain {
				vecs[i] = ctx.Space.Encode(&chain[i])
			}
			q := SurrogateQuerier(s.Surrogate)
			if s.Queries != nil {
				q = s.Queries
			}
			var err error
			if preds, err = q.PredictBatch(vecs, eExp, dExp, nil); err != nil {
				return Result{}, err
			}
		}
		vals, err := t.scoreSurrogateBatch(chain, nil)
		if err != nil {
			return Result{}, err
		}
		for i := range vals {
			nextE := preds[i]
			if d := math.Abs(nextE - curE); d > 0 {
				deltas.Add(d)
			}
			cur, curE = chain[i], nextE
		}
	}
	meanDelta := deltas.Mean()
	if meanDelta <= 0 {
		meanDelta = math.Max(math.Abs(curE)*0.1, 1)
	}
	tMax := meanDelta / -math.Log(0.98)
	tMin := meanDelta / -math.Log(1e-4)
	if tMin >= tMax {
		tMin = tMax / 1e4
	}

	for !t.exhausted() {
		temp := tMax * math.Pow(tMin/tMax, t.progress())
		next := ctx.Space.Perturb(rng, &cur)
		nextE, err := predict(&next)
		if err != nil {
			return Result{}, err
		}
		if _, err := t.scoreSurrogateStep(&next); err != nil {
			return Result{}, err
		}
		delta := nextE - curE
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur, curE = next, nextE
		}
	}
	return t.result(s.Name()), nil
}
