package search

import (
	"sync"
	"sync/atomic"

	"mindmappings/internal/mapspace"
)

// Batched evaluation: searchers that can name a whole neighborhood or
// population up front (GA offspring cohorts, SA pilot chains, beam
// expansions, random chunks, multi-chain gradient scoring) hand it to the
// tracker as one batch instead of one candidate at a time. Sequentially
// that amortizes per-candidate overhead; with Context.Parallelism > 1 the
// cost-model queries additionally fan out across a bounded worker pool.
//
// The contract in both modes is exact equivalence with the scalar loop:
// candidates are recorded in slice order, the budget is re-checked before
// every record just as a scalar searcher re-checks it before every
// payEval, and a batch stops recording (discarding the tail) the moment
// the budget expires. Trajectories are therefore bit-identical across
// scalar/batched/parallel execution for a fixed seed — the determinism
// tests pin this.

// payEvalBatch evaluates candidates as paid reference-cost-model queries,
// recording them in order, and returns their normalized objective values.
// The returned slice (vals reused when it has capacity) may be shorter
// than ms: its length is the number of candidates recorded before the
// budget ran out. The first candidate is always evaluated (callers check
// the budget before building a batch, mirroring the scalar loops).
func (t *tracker) payEvalBatch(ms []mapspace.Mapping, vals []float64) ([]float64, error) {
	return t.evalBatch(ms, vals, true)
}

// scoreSurrogateBatch is payEvalBatch for Mind-Mappings-style surrogate
// iterations: each candidate charges one (cheap) surrogate query against
// the budget and is scored offline through the free cost-model path.
func (t *tracker) scoreSurrogateBatch(ms []mapspace.Mapping, vals []float64) ([]float64, error) {
	return t.evalBatch(ms, vals, false)
}

func (t *tracker) evalBatch(ms []mapspace.Mapping, vals []float64, paid bool) ([]float64, error) {
	if cap(vals) >= len(ms) {
		vals = vals[:0]
	} else {
		vals = make([]float64, 0, len(ms))
	}
	workers := t.ctx.Parallelism
	if t.ctx.Scalar || workers <= 1 || len(ms) <= 1 {
		// Scalar path: literally the per-candidate loop every searcher ran
		// before batching existed.
		for i := range ms {
			if i > 0 && t.exhausted() {
				break
			}
			var (
				val float64
				err error
			)
			if paid {
				val, err = t.payEval(&ms[i])
			} else {
				val, err = t.scoreSurrogateStep(&ms[i])
			}
			if err != nil {
				return nil, err
			}
			vals = append(vals, val)
		}
		return vals, nil
	}

	// Parallel path: compute every candidate's value on the worker pool,
	// then replay the results through the tracker in candidate order so
	// recording (and hence the trajectory) is independent of scheduling.
	n := len(ms)
	if workers > n {
		workers = n
	}
	if len(t.workers) < workers {
		t.workers = make([]workerScratch, workers)
	}
	if cap(t.batchV) < n {
		t.batchV = make([]float64, n)
		t.batchE = make([]error, n)
	}
	results := t.batchV[:n]
	errs := t.batchE[:n]
	for i := range errs {
		errs[i] = nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerScratch) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Honor cancellation between evaluations, like the scalar
				// loop: remaining candidates are marked, not evaluated, so
				// a canceled run stops within one in-flight evaluation per
				// worker instead of finishing the whole batch.
				if t.ctx.canceled() {
					errs[i] = t.ctx.Ctx.Err()
					continue
				}
				results[i], errs[i] = t.evalValue(&ms[i], paid, ws)
			}
		}(&t.workers[w])
	}
	wg.Wait()
	for i := range ms {
		if i > 0 && t.exhausted() {
			break
		}
		if errs[i] != nil {
			if t.ctx.canceled() {
				// Interrupted mid-batch: stop recording and let the
				// searcher return its best-so-far result, the same
				// contract as scalar cancellation.
				break
			}
			return nil, errs[i]
		}
		t.evals++
		t.record(&ms[i], results[i])
		vals = append(vals, results[i])
	}
	return vals, nil
}

// remainingEvals returns how many more candidates may be generated for a
// batch under an eval-capped budget (at least min 1 so a caller that
// passed the exhausted() gate can always build a single-candidate batch),
// or limit when only time-bounded.
func (t *tracker) remainingEvals(limit int) int {
	if t.budget.MaxEvals <= 0 {
		return limit
	}
	r := t.budget.MaxEvals - t.evals
	if r < 1 {
		r = 1
	}
	if r > limit {
		return limit
	}
	return r
}
