package search

import (
	"math"

	"mindmappings/internal/costmodel"
	"mindmappings/internal/mapspace"
)

// Batched evaluation: searchers that can name a whole neighborhood or
// population up front (GA offspring cohorts, SA pilot chains, beam
// expansions, random chunks, multi-chain gradient scoring) hand it to the
// tracker as one batch instead of one candidate at a time. Sequentially
// that amortizes per-candidate overhead; with Context.Parallelism > 1 the
// cost-model queries additionally fan out across the costmodel parallel
// middleware's bounded worker pool.
//
// The contract in both modes is exact equivalence with the scalar loop:
// candidates are recorded in slice order, the budget is re-checked before
// every record just as a scalar searcher re-checks it before every
// payEval, and a batch stops recording (discarding the tail) the moment
// the budget expires. Trajectories are therefore bit-identical across
// scalar/batched/parallel execution for a fixed seed — the determinism
// tests pin this.

// payEvalBatch evaluates candidates as paid reference-cost-model queries,
// recording them in order, and returns their normalized objective values.
// The returned slice (vals reused when it has capacity) may be shorter
// than ms: its length is the number of candidates recorded before the
// budget ran out. The first candidate is always evaluated (callers check
// the budget before building a batch, mirroring the scalar loops).
func (t *tracker) payEvalBatch(ms []mapspace.Mapping, vals []float64) ([]float64, error) {
	return t.evalBatch(ms, vals, true)
}

// scoreSurrogateBatch is payEvalBatch for Mind-Mappings-style surrogate
// iterations: each candidate charges one (cheap) surrogate query against
// the budget and is scored offline through the free cost-model path.
func (t *tracker) scoreSurrogateBatch(ms []mapspace.Mapping, vals []float64) ([]float64, error) {
	return t.evalBatch(ms, vals, false)
}

func (t *tracker) evalBatch(ms []mapspace.Mapping, vals []float64, paid bool) ([]float64, error) {
	if cap(vals) >= len(ms) {
		vals = vals[:0]
	} else {
		vals = make([]float64, 0, len(ms))
	}
	if t.ctx.Scalar || t.paidBatch == nil || len(ms) <= 1 {
		// Scalar path: literally the per-candidate loop every searcher ran
		// before batching existed.
		for i := range ms {
			if i > 0 && t.exhausted() {
				break
			}
			var (
				val float64
				err error
			)
			if paid {
				val, err = t.payEval(&ms[i])
			} else {
				val, err = t.scoreSurrogateStep(&ms[i])
			}
			if err != nil {
				return nil, err
			}
			if t.ctx.canceled() && math.IsInf(val, 1) {
				// Interrupted mid-evaluation: the candidate was never
				// recorded, so its sentinel value is not handed back either
				// (mirroring the parallel path's mid-batch break).
				break
			}
			vals = append(vals, val)
		}
		return vals, nil
	}

	// Parallel path: the costmodel parallel middleware computes every
	// candidate's cost on its worker pool (results landing at the
	// candidate's index), then the results are replayed through the
	// tracker in candidate order so recording (and hence the trajectory)
	// is independent of scheduling.
	n := len(ms)
	if cap(t.batchCosts) < n {
		t.batchCosts = make([]costmodel.Cost, n)
		t.batchErrs = make([]error, n)
	}
	costs := t.batchCosts[:n]
	errs := t.batchErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	ev := t.freeBatch
	if paid {
		ev = t.paidBatch
	}
	ev.EvaluateBatchInto(t.ectx, ms, costs, errs)
	for i := range ms {
		if i > 0 && t.exhausted() {
			break
		}
		if errs[i] != nil {
			if t.ctx.canceled() {
				// Interrupted mid-batch: stop recording and let the
				// searcher return its best-so-far result, the same
				// contract as scalar cancellation.
				break
			}
			return nil, errs[i]
		}
		t.evals++
		val := t.ctx.Objective.normalized(&costs[i], t.ctx.Bound)
		t.record(&ms[i], val)
		vals = append(vals, val)
	}
	return vals, nil
}

// remainingEvals returns how many more candidates may be generated for a
// batch under an eval-capped budget (at least min 1 so a caller that
// passed the exhausted() gate can always build a single-candidate batch),
// or limit when only time-bounded.
func (t *tracker) remainingEvals(limit int) int {
	if t.budget.MaxEvals <= 0 {
		return limit
	}
	r := t.budget.MaxEvals - t.evals
	if r < 1 {
		r = 1
	}
	if r > limit {
		return limit
	}
	return r
}
