package search

import (
	"math/rand"

	"mindmappings/internal/nn"
)

// newTestMLP builds a small network for unit tests of RL internals.
func newTestMLP(rng *rand.Rand) (*nn.MLP, error) {
	return nn.NewMLP([]int{2, 4, 2}, nn.ReLU{}, rng)
}
