package mapspace

import (
	"math"
	"sort"

	"mindmappings/internal/arch"
)

// desired captures a possibly-infeasible target point in mapping space:
// continuous log2 tile factors, continuous loop-order rank scores (lower is
// outer), and continuous allocations. Projection turns it into the nearest
// valid Mapping.
type desired struct {
	logs  [][4]float64
	ranks [arch.NumLevels][]float64
	alloc [arch.OnChipLevels][]float64
}

func (s *Space) desiredFrom(m *Mapping) desired {
	d := s.NumDims()
	des := desired{logs: make([][4]float64, d)}
	structurallyComplete := len(m.Spatial) == d
	for l := range m.Tile {
		if len(m.Tile[l]) != d {
			structurallyComplete = false
		}
	}
	for dim := 0; dim < d && structurallyComplete; dim++ {
		c := m.Chain(dim)
		for i, f := range c {
			if f < 1 {
				f = 1
			}
			des.logs[dim][i] = math.Log2(float64(f))
		}
	}
	if !structurallyComplete {
		// Incomplete mappings project as if they requested everything at
		// DRAM (the minimal tiling).
		for dim := 0; dim < d; dim++ {
			des.logs[dim][ChainDRAM] = math.Log2(float64(s.Prob.Shape[dim]))
		}
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		des.ranks[l] = make([]float64, d)
		if isPermutation(m.Order[l], d) {
			for pos, dim := range m.Order[l] {
				des.ranks[l][dim] = float64(pos)
			}
		} // else: all-zero ranks decode to the identity order
	}
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		des.alloc[level] = make([]float64, s.NumTensors())
		for t := range des.alloc[level] {
			if t < len(m.Alloc[level]) {
				des.alloc[level][t] = m.Alloc[level][t]
			}
		}
	}
	return des
}

// Project maps an arbitrary (possibly invalid) mapping onto the nearest
// valid member of the space — the paper's getProjection routine, used after
// every gradient step ("we calculate nearest neighbor valid mappings based
// on euclidean distance ... a standard approach, often referred to as
// Projected Gradient Descent", §4.2). Distances are measured in log2 space
// for tile factors, rank space for loop orders, and fraction space for
// allocations.
func (s *Space) Project(m Mapping) Mapping {
	return s.projectDesired(s.desiredFrom(&m))
}

// Reproject adapts a mapping solved for a different problem shape of the
// same algorithm into this space: the donor's on-chip structure (L1,
// spatial, and L2 tile logs), loop orders, and buffer allocations become
// the desired point, while each dimension's DRAM factor is re-targeted so
// the chain covers this space's shape; projection then snaps the result
// to the nearest valid member. This is the atlas nearest-neighbor warm
// start — good mappings transfer across similar shapes because the
// on-chip blocking, not the outer DRAM trip count, is what the search
// spent its budget discovering.
func (s *Space) Reproject(m *Mapping) Mapping {
	des := s.desiredFrom(m)
	for dim := 0; dim < s.NumDims(); dim++ {
		onchip := des.logs[dim][ChainL1] + des.logs[dim][ChainSpatial] + des.logs[dim][ChainL2]
		dram := math.Log2(float64(s.Prob.Shape[dim])) - onchip
		if dram < 0 {
			dram = 0
		}
		des.logs[dim][ChainDRAM] = dram
	}
	return s.projectDesired(des)
}

// Repair returns m unchanged when it is already valid, otherwise its
// projection. All mutation-style operators funnel through this.
func (s *Space) Repair(m Mapping) Mapping {
	if s.IsMember(&m) == nil {
		return m
	}
	return s.Project(m)
}

func (s *Space) projectDesired(des desired) Mapping {
	m := s.emptyMapping()

	// 1. Per-dimension nearest factor chains under the PE budget. Greedy in
	// descending desired spatial so large parallelism requests are honored
	// first.
	d := s.NumDims()
	dims := make([]int, d)
	for i := range dims {
		dims[i] = i
	}
	sort.SliceStable(dims, func(a, b int) bool {
		return des.logs[dims[a]][ChainSpatial] > des.logs[dims[b]][ChainSpatial]
	})
	budget := s.Arch.NumPEs
	for _, dim := range dims {
		c, ok := NearestChain(s.chains[dim], des.logs[dim], budget)
		if !ok {
			// Always possible: spatial factor 1 chains exist for every size.
			c, _ = NearestChain(s.chains[dim], des.logs[dim], 1)
		}
		m.SetChain(dim, c)
		budget /= c[ChainSpatial]
	}

	// 2. Shrink tiles until footprints fit raw buffer capacity.
	s.shrinkToFit(&m, des.logs)

	// 3. Loop orders: argsort of the rank scores, ties broken by dimension
	// index for determinism.
	for l := arch.L1; l < arch.NumLevels; l++ {
		m.Order[l] = ranksToPerm(des.ranks[l])
	}

	// 4. Allocations: clamp the request and project onto the feasible
	// region (footprint floor per tensor, per-level sum at most 1).
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		for t := range m.Alloc[level] {
			m.Alloc[level][t] = clamp01(des.alloc[level][t])
		}
	}
	if !s.repairAlloc(&m) {
		// shrinkToFit guarantees feasibility; reaching here means a logic
		// error, so fail safe with the always-valid minimal mapping.
		m = s.minimalMapping()
	}
	return m
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ranksToPerm converts per-dimension rank scores into a permutation
// (outermost first). Lower scores go outer; ties resolve by dimension index.
func ranksToPerm(ranks []float64) []int {
	perm := identityPerm(len(ranks))
	if len(ranks) == 0 {
		return perm
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := ranks[perm[a]], ranks[perm[b]]
		if math.IsNaN(ra) {
			ra = 0
		}
		if math.IsNaN(rb) {
			rb = 0
		}
		return ra < rb
	})
	return perm
}

// bandProduct returns the cumulative tile factor of dimension dim at the
// given on-chip level (L1: the L1 factor; L2: L1·spatial·L2).
func bandProduct(m *Mapping, level arch.Level, dim int) int {
	p := m.Tile[arch.L1][dim]
	if level >= arch.L2 {
		p *= m.Spatial[dim] * m.Tile[arch.L2][dim]
	}
	return p
}

// shrinkToFit reduces tile factors, nearest-first relative to the desired
// logs, until the summed tensor footprints fit the raw capacity of both
// on-chip levels. Termination: every replacement strictly reduces the
// offending cumulative tile factor, which is bounded below by 1, and the
// all-ones tiling fits by construction of the Space.
func (s *Space) shrinkToFit(m *Mapping, logs [][4]float64) {
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		for s.totalFootprint(m, level) > capWords+allocTolerance {
			if !s.shrinkOnce(m, level, logs) {
				// Nothing left to shrink at this level; force minimal
				// on-chip tiles for every dimension as a final safety net.
				for dim, size := range s.Prob.Shape {
					m.SetChain(dim, FactorChain{1, 1, 1, size})
				}
				break
			}
		}
	}
}

// shrinkOnce picks the dimension that contributes the largest cumulative
// tile factor at the level among dimensions relevant to the largest-
// footprint tensor, and replaces its chain with the nearest one having a
// strictly smaller cumulative factor (and no larger spatial factor, to keep
// the PE budget satisfied). Returns false when no dimension can shrink.
func (s *Space) shrinkOnce(m *Mapping, level arch.Level, logs [][4]float64) bool {
	tile := m.CumulativeTile(level)
	// Tensors by descending footprint.
	type tfp struct {
		t  int
		fp float64
	}
	var order []tfp
	for t := range s.Prob.Algo.Tensors {
		order = append(order, tfp{t, float64(s.Prob.Algo.Tensors[t].Footprint(tile))})
	}
	sort.SliceStable(order, func(a, b int) bool { return order[a].fp > order[b].fp })

	for _, cand := range order {
		tensor := &s.Prob.Algo.Tensors[cand.t]
		bestDim := -1
		bestProd := 1
		for _, dim := range tensor.Dims {
			if p := bandProduct(m, level, dim); p > bestProd {
				bestProd = p
				bestDim = dim
			}
		}
		if bestDim < 0 {
			continue
		}
		cur := m.Chain(bestDim)
		curSpatial := cur[ChainSpatial]
		curProd := bandProduct(m, level, bestDim)
		best := FactorChain{}
		bestDist := math.Inf(1)
		found := false
		for _, c := range s.chains[bestDim] {
			if c[ChainSpatial] > curSpatial {
				continue
			}
			p := c[ChainL1]
			if level >= arch.L2 {
				p *= c[ChainSpatial] * c[ChainL2]
			}
			if p >= curProd {
				continue
			}
			if dist := c.LogDistance(logs[bestDim]); dist < bestDist {
				bestDist = dist
				best = c
				found = true
			}
		}
		if found {
			m.SetChain(bestDim, best)
			return true
		}
	}
	return false
}
