package mapspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDivisors(t *testing.T) {
	cases := map[int][]int{
		1:  {1},
		12: {1, 2, 3, 4, 6, 12},
		13: {1, 13},
		16: {1, 2, 4, 8, 16},
	}
	for n, want := range cases {
		got := Divisors(n)
		if len(got) != len(want) {
			t.Fatalf("Divisors(%d) = %v, want %v", n, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Divisors(%d) = %v, want %v", n, got, want)
			}
		}
	}
	if Divisors(0) != nil {
		t.Fatal("Divisors(0) must be nil")
	}
}

func TestEnumerateChainsSmall(t *testing.T) {
	chains := EnumerateChains(4)
	// Ordered 4-way factorizations of 2^2: C(2+3,3) = 10.
	if len(chains) != 10 {
		t.Fatalf("chains(4) = %d, want 10", len(chains))
	}
	for _, c := range chains {
		if c.Product() != 4 {
			t.Fatalf("chain %v product %d != 4", c, c.Product())
		}
	}
}

func TestEnumerateChainsCount(t *testing.T) {
	// d4(12) = d4(2^2 * 3) = C(5,3) * C(4,3) = 10*4 = 40.
	if got := len(EnumerateChains(12)); got != 40 {
		t.Fatalf("chains(12) = %d, want 40", got)
	}
	if got := countChains(12); got != 40 {
		t.Fatalf("countChains(12) = %v, want 40", got)
	}
}

func TestEnumerateChainsDistinct(t *testing.T) {
	seen := map[FactorChain]bool{}
	for _, c := range EnumerateChains(24) {
		if seen[c] {
			t.Fatalf("duplicate chain %v", c)
		}
		seen[c] = true
	}
}

// Property: every enumerated chain multiplies back to n, and the count
// matches countChains, for arbitrary small n.
func TestEnumerateChainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		chains := EnumerateChains(n)
		if float64(len(chains)) != countChains(n) {
			return false
		}
		for _, c := range chains {
			if c.Product() != n {
				return false
			}
			for _, f := range c {
				if f < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChainLogs(t *testing.T) {
	c := FactorChain{1, 2, 4, 8}
	logs := c.Logs()
	for i, want := range []float64{0, 1, 2, 3} {
		if math.Abs(logs[i]-want) > 1e-12 {
			t.Fatalf("Logs = %v", logs)
		}
	}
}

func TestLogDistance(t *testing.T) {
	c := FactorChain{2, 2, 2, 2}
	d := c.LogDistance([4]float64{1, 1, 1, 1})
	if d != 0 {
		t.Fatalf("distance to self = %v", d)
	}
	d = c.LogDistance([4]float64{0, 1, 1, 1})
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("distance = %v, want 1", d)
	}
}

func TestNearestChainExact(t *testing.T) {
	chains := EnumerateChains(16)
	want := FactorChain{2, 4, 2, 1}
	got, ok := NearestChain(chains, want.Logs(), 0)
	if !ok || got != want {
		t.Fatalf("NearestChain = %v ok=%v, want %v", got, ok, want)
	}
}

func TestNearestChainSpatialCap(t *testing.T) {
	chains := EnumerateChains(16)
	desired := FactorChain{1, 16, 1, 1}.Logs()
	got, ok := NearestChain(chains, desired, 4)
	if !ok {
		t.Fatal("no chain under cap")
	}
	if got[ChainSpatial] > 4 {
		t.Fatalf("cap violated: %v", got)
	}
	// Should pick the largest allowed spatial factor, 4.
	if got[ChainSpatial] != 4 {
		t.Fatalf("NearestChain under cap = %v, want spatial 4", got)
	}
}

func TestNearestChainEmpty(t *testing.T) {
	if _, ok := NearestChain(nil, [4]float64{}, 0); ok {
		t.Fatal("NearestChain on empty candidates must report !ok")
	}
}

func TestSmallestPrimeFactor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 9: 3, 15: 3, 49: 7, 97: 97}
	for n, want := range cases {
		if got := smallestPrimeFactor(n); got != want {
			t.Fatalf("spf(%d) = %d, want %d", n, got, want)
		}
	}
}
