package mapspace

import (
	"fmt"
	"strings"

	"mindmappings/internal/arch"
)

// RenderLoopNest pretty-prints a mapping as the tiled loop nest it
// represents, in the style of the paper's Code 1/Code 2 listings: DRAM-level
// loops outermost, then L2-level loops, a parallel band for the spatial
// factors, and the per-PE L1 loops innermost. Trip-count-1 loops are
// omitted (they are degenerate), and each band is annotated with the
// storage level whose tiles it iterates over plus the per-tensor buffer
// allocations.
//
// Example output for a tiled 1D convolution:
//
//	// problem conv1d(X=4096, R=9), 36864 MACs
//	for x2 in [0:8)            // DRAM loops (DRAM->L2 tiles)
//	  for r1 in [0:3)          // L2 loops (L2->L1 tiles)
//	    parallel for x_sp in [0:64)
//	      for x0 in [0:8)      // L1 loops (per-PE)
//	        for r0 in [0:3)
//	          O[...] += I[...] * F[...]
func (s *Space) RenderLoopNest(m *Mapping) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// problem %s, %.4g MACs\n", s.Prob.String(), s.Prob.MACs())
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		fmt.Fprintf(&b, "// %s allocation:", level)
		for t := range s.Prob.Algo.Tensors {
			fmt.Fprintf(&b, " %s=%.0f%%", s.Prob.Algo.Tensors[t].Name, 100*m.Alloc[level][t])
		}
		fmt.Fprintln(&b)
	}

	indent := 0
	write := func(line string) {
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(line)
		b.WriteByte('\n')
	}
	band := func(level arch.Level, suffix, comment string) {
		first := true
		for _, dim := range m.Order[level] {
			count := m.Tile[level][dim]
			if count <= 1 {
				continue
			}
			c := ""
			if first {
				c = "  // " + comment
				first = false
			}
			write(fmt.Sprintf("for %s%s in [0:%d)%s",
				strings.ToLower(s.Prob.Algo.DimNames[dim]), suffix, count, c))
			indent++
		}
	}

	band(arch.DRAM, "2", "DRAM loops (DRAM->L2 tiles)")
	band(arch.L2, "1", "L2 loops (L2->L1 tiles)")
	first := true
	for dim, sp := range m.Spatial {
		if sp <= 1 {
			continue
		}
		c := ""
		if first {
			c = fmt.Sprintf("  // spatial band: %d PEs", m.SpatialPEs())
			first = false
		}
		write(fmt.Sprintf("parallel for %s_sp in [0:%d)%s",
			strings.ToLower(s.Prob.Algo.DimNames[dim]), sp, c))
		indent++
	}
	band(arch.L1, "0", "L1 loops (per-PE)")

	// Innermost statement: output accumulates the product of the inputs.
	var out string
	var ins []string
	for t := range s.Prob.Algo.Tensors {
		name := s.Prob.Algo.Tensors[t].Name
		if s.Prob.Algo.Tensors[t].Output {
			out = name
		} else {
			ins = append(ins, name+"[...]")
		}
	}
	write(fmt.Sprintf("%s[...] += %s", out, strings.Join(ins, " * ")))
	return b.String()
}
