// Package mapspace implements the algorithm-accelerator mapping space of
// the paper (§2.1): mappings, membership testing, uniform random sampling,
// projection of arbitrary points onto the valid space, perturbation and
// recombination operators for the black-box baselines, and the flat
// float-vector encoding consumed by the surrogate (§4.1.2, §5.5).
//
// A mapping assigns every problem dimension a four-band tile factorization
// (L1-temporal, spatial-across-PEs, L2-temporal, DRAM-temporal), a loop
// order per temporal level, and a buffer-bank allocation per tensor per
// on-chip level — the programmable attributes of the evaluated accelerator
// (§5.1.3).
package mapspace

import (
	"fmt"
	"strings"

	"mindmappings/internal/arch"
)

// Mapping is one point in a map space: a complete assignment to the
// accelerator's programmable attributes for one problem.
type Mapping struct {
	// Tile holds temporal tile factors indexed [level][dim] for levels
	// arch.L1, arch.L2, arch.DRAM. Together with Spatial, the per-dimension
	// factors multiply to the problem dimension size.
	Tile [arch.NumLevels][]int
	// Spatial is the per-dimension parallelism across PEs; the product over
	// dims may not exceed the PE count.
	Spatial []int
	// Order is the loop ordering per temporal level; Order[l] is a
	// permutation of dimension indices, outermost first.
	Order [arch.NumLevels][]int
	// Alloc is the fraction of buffer capacity allocated to each tensor at
	// each on-chip level, indexed [level][tensor]; per-level sums must not
	// exceed 1.
	Alloc [arch.OnChipLevels][]float64
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() Mapping {
	var out Mapping
	for l := range m.Tile {
		out.Tile[l] = append([]int(nil), m.Tile[l]...)
	}
	out.Spatial = append([]int(nil), m.Spatial...)
	for l := range m.Order {
		out.Order[l] = append([]int(nil), m.Order[l]...)
	}
	for l := range m.Alloc {
		out.Alloc[l] = append([]float64(nil), m.Alloc[l]...)
	}
	return out
}

// Chain returns dimension d's four-band factorization.
func (m *Mapping) Chain(d int) FactorChain {
	return FactorChain{
		ChainL1:      m.Tile[arch.L1][d],
		ChainSpatial: m.Spatial[d],
		ChainL2:      m.Tile[arch.L2][d],
		ChainDRAM:    m.Tile[arch.DRAM][d],
	}
}

// SetChain installs a four-band factorization for dimension d.
func (m *Mapping) SetChain(d int, c FactorChain) {
	m.Tile[arch.L1][d] = c[ChainL1]
	m.Spatial[d] = c[ChainSpatial]
	m.Tile[arch.L2][d] = c[ChainL2]
	m.Tile[arch.DRAM][d] = c[ChainDRAM]
}

// SpatialPEs returns the number of PEs the mapping uses: the product of all
// spatial factors.
func (m *Mapping) SpatialPEs() int {
	pes := 1
	for _, s := range m.Spatial {
		pes *= s
	}
	return pes
}

// CumulativeTile returns the per-dimension data-tile sizes resident at the
// given level: at L1 the L1 temporal factors; at L2 additionally the
// spatial and L2 factors (the shared buffer holds the tiles of all PEs);
// at DRAM the full problem shape.
func (m *Mapping) CumulativeTile(level arch.Level) []int {
	return m.CumulativeTileInto(nil, level)
}

// CumulativeTileInto is CumulativeTile writing into dst (grown when too
// short, reused otherwise), so evaluation hot paths can stay
// allocation-free.
func (m *Mapping) CumulativeTileInto(dst []int, level arch.Level) []int {
	d := len(m.Spatial)
	if cap(dst) < d {
		dst = make([]int, d)
	}
	dst = dst[:d]
	for i := 0; i < d; i++ {
		t := m.Tile[arch.L1][i]
		if level >= arch.L2 {
			t *= m.Spatial[i] * m.Tile[arch.L2][i]
		}
		if level >= arch.DRAM {
			t *= m.Tile[arch.DRAM][i]
		}
		dst[i] = t
	}
	return dst
}

// String renders the mapping compactly for logs and error messages.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tiles L1=%v sp=%v L2=%v DRAM=%v order L1=%v L2=%v DRAM=%v alloc L1=%s L2=%s",
		m.Tile[arch.L1], m.Spatial, m.Tile[arch.L2], m.Tile[arch.DRAM],
		m.Order[arch.L1], m.Order[arch.L2], m.Order[arch.DRAM],
		fmtFracs(m.Alloc[arch.L1]), fmtFracs(m.Alloc[arch.L2]))
	return b.String()
}

func fmtFracs(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmt.Sprintf("%.2f", f)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
