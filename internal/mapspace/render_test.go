package mapspace

import (
	"math/rand"
	"strings"
	"testing"

	"mindmappings/internal/arch"
)

func TestRenderLoopNestMinimal(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.Minimal()
	out := s.RenderLoopNest(&m)
	// Minimal mapping: all loops at DRAM, no spatial or on-chip loops.
	if !strings.Contains(out, "DRAM loops") {
		t.Fatalf("missing DRAM band:\n%s", out)
	}
	if strings.Contains(out, "parallel for") {
		t.Fatalf("minimal mapping must have no spatial band:\n%s", out)
	}
	if !strings.Contains(out, "O[...] += A[...] * B[...] * C[...]") {
		t.Fatalf("missing innermost statement:\n%s", out)
	}
	if !strings.Contains(out, "// problem") {
		t.Fatalf("missing problem header:\n%s", out)
	}
}

func TestRenderLoopNestBands(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.Minimal()
	// I = 64: 2 in L1, 4 spatial, 2 in L2, 4 at DRAM.
	m.SetChain(0, FactorChain{2, 4, 2, 4})
	m = s.Repair(m)
	out := s.RenderLoopNest(&m)
	for _, want := range []string{
		"for i2 in [0:4)",
		"for i1 in [0:2)",
		"parallel for i_sp in [0:4)",
		"for i0 in [0:2)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderLoopNestOmitsUnitLoops(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(3))
	m := s.Random(rng)
	out := s.RenderLoopNest(&m)
	if strings.Contains(out, "[0:1)") {
		t.Fatalf("unit loops must be omitted:\n%s", out)
	}
}

func TestRenderLoopNestOrderRespected(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.Minimal()
	m.SetChain(0, FactorChain{1, 1, 1, 64})  // I
	m.SetChain(1, FactorChain{1, 1, 1, 128}) // J
	m.Order[arch.DRAM] = []int{1, 0, 2, 3}   // J outermost
	m = s.Repair(m)
	out := s.RenderLoopNest(&m)
	jPos := strings.Index(out, "for j2")
	iPos := strings.Index(out, "for i2")
	if jPos < 0 || iPos < 0 || jPos > iPos {
		t.Fatalf("J must render outside I:\n%s", out)
	}
}

func TestRenderLoopNestAllocations(t *testing.T) {
	s := testSpaceCNN(t)
	m := s.Minimal()
	out := s.RenderLoopNest(&m)
	if !strings.Contains(out, "L1 allocation:") || !strings.Contains(out, "L2 allocation:") {
		t.Fatalf("missing allocation annotations:\n%s", out)
	}
	if !strings.Contains(out, "Weights=") {
		t.Fatalf("missing tensor allocation entries:\n%s", out)
	}
}
