package mapspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindmappings/internal/arch"
)

func TestProjectIdentityOnValid(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		m := s.Random(rng)
		p := s.Project(m)
		if err := s.IsMember(&p); err != nil {
			t.Fatalf("projection of valid mapping invalid: %v", err)
		}
		// Tiling and orders of an already-valid mapping must survive
		// projection exactly.
		for dim := range s.Prob.Shape {
			if p.Chain(dim) != m.Chain(dim) {
				t.Fatalf("projection changed chain of valid mapping: %v -> %v",
					m.Chain(dim), p.Chain(dim))
			}
		}
		for l := arch.L1; l < arch.NumLevels; l++ {
			for i := range p.Order[l] {
				if p.Order[l][i] != m.Order[l][i] {
					t.Fatalf("projection changed order of valid mapping")
				}
			}
		}
	}
}

func TestProjectRepairsBadProducts(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(12))
	m := s.Random(rng)
	m.Tile[arch.DRAM][2] *= 3 // break factorization of dim C
	p := s.Project(m)
	if err := s.IsMember(&p); err != nil {
		t.Fatalf("projection invalid: %v", err)
	}
}

func TestProjectRepairsSpatialBudget(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.minimalMapping()
	// Demand far more parallelism than 256 PEs.
	m.SetChain(0, FactorChain{1, 64, 1, 1})
	m.Tile[arch.DRAM][0] = 1
	m.SetChain(1, FactorChain{1, 128, 1, 1})
	m.SetChain(2, FactorChain{1, 256, 1, 1})
	p := s.Project(m)
	if err := s.IsMember(&p); err != nil {
		t.Fatalf("projection invalid: %v", err)
	}
	if p.SpatialPEs() > s.Arch.NumPEs {
		t.Fatalf("projection kept %d PEs", p.SpatialPEs())
	}
}

func TestProjectRepairsOversizedTiles(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.minimalMapping()
	// Whole problem in L1 (64*128*256*128 words >> 32K words).
	for dim, size := range s.Prob.Shape {
		m.SetChain(dim, FactorChain{size, 1, 1, 1})
	}
	p := s.Project(m)
	if err := s.IsMember(&p); err != nil {
		t.Fatalf("projection invalid: %v", err)
	}
}

func TestProjectGarbageOrdersAndAllocs(t *testing.T) {
	s := testSpaceCNN(t)
	m := s.minimalMapping()
	m.Order[arch.L1] = []int{0, 0, 0, 0, 0, 0, 0}
	m.Order[arch.L2] = nil
	m.Alloc[arch.L1] = []float64{math.NaN(), -5, 7}
	m.Alloc[arch.L2] = nil
	p := s.Project(m)
	if err := s.IsMember(&p); err != nil {
		t.Fatalf("projection invalid: %v", err)
	}
}

// Property: projecting arbitrary random garbage always yields a valid
// member — the core guarantee Phase 2 relies on at every descent step.
func TestProjectGarbageProperty(t *testing.T) {
	s := testSpaceCNN(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := s.Random(rng)
		// Randomly corrupt several fields.
		for k := 0; k < 5; k++ {
			dim := rng.Intn(s.NumDims())
			switch rng.Intn(4) {
			case 0:
				m.Tile[arch.Level(rng.Intn(3))][dim] = rng.Intn(500)
			case 1:
				m.Spatial[dim] = rng.Intn(4096)
			case 2:
				m.Order[arch.Level(rng.Intn(3))][dim] = rng.Intn(20) - 5
			case 3:
				level := arch.Level(rng.Intn(2))
				tensor := rng.Intn(s.NumTensors())
				m.Alloc[level][tensor] = rng.Float64()*4 - 2
			}
		}
		p := s.Project(m)
		return s.IsMember(&p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksToPerm(t *testing.T) {
	perm := ranksToPerm([]float64{2, 0, 1})
	if perm[0] != 1 || perm[1] != 2 || perm[2] != 0 {
		t.Fatalf("ranksToPerm = %v", perm)
	}
	// Ties resolve by dimension index.
	perm = ranksToPerm([]float64{1, 1, 0})
	if perm[0] != 2 || perm[1] != 0 || perm[2] != 1 {
		t.Fatalf("ranksToPerm ties = %v", perm)
	}
	if got := ranksToPerm(nil); len(got) != 0 {
		t.Fatal("empty ranks must give empty perm")
	}
}

func TestRepairLeavesValidUntouched(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(13))
	m := s.Random(rng)
	r := s.Repair(m.Clone())
	if r.String() != m.String() {
		t.Fatalf("Repair modified a valid mapping:\n%s\n%s", m.String(), r.String())
	}
}
