package mapspace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// testSpaceCNN returns a small CNN map space used across the tests.
func testSpaceCNN(t testing.TB) *Space {
	t.Helper()
	p, err := loopnest.NewCNNProblem("test", 4, 16, 8, 14, 14, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(arch.Default(2), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testSpaceMTTKRP(t testing.TB) *Space {
	t.Helper()
	p, err := loopnest.NewMTTKRPProblem("test", 64, 128, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(arch.Default(3), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsInvalidInputs(t *testing.T) {
	p, err := loopnest.NewCNNProblem("t", 1, 2, 2, 4, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := arch.Default(2)
	bad.NumPEs = 0
	if _, err := New(bad, p); err == nil {
		t.Fatal("accepted invalid arch")
	}
	if _, err := New(arch.Default(2), loopnest.Problem{}); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

func TestRandomMappingsAreMembers(t *testing.T) {
	for _, s := range []*Space{testSpaceCNN(t), testSpaceMTTKRP(t)} {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			m := s.Random(rng)
			if err := s.IsMember(&m); err != nil {
				t.Fatalf("%s sample %d invalid: %v\n%s", s.Prob.Name, i, err, m.String())
			}
		}
	}
}

func TestRandomMappingsVaried(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(2))
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		m := s.Random(rng)
		seen[m.String()] = true
	}
	if len(seen) < 45 {
		t.Fatalf("only %d distinct mappings in 50 draws", len(seen))
	}
}

func TestIsMemberCatchesViolations(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(3))
	base := s.Random(rng)

	breakers := map[string]func(m *Mapping){
		"bad product": func(m *Mapping) { m.Tile[arch.DRAM][0] *= 2 },
		"zero factor": func(m *Mapping) { m.Tile[arch.L1][1] = 0 },
		"spatial budget": func(m *Mapping) {
			m.Spatial[1] = 1024
			m.Tile[arch.DRAM][1] = 1
			m.Tile[arch.L1][1] = 1
			m.Tile[arch.L2][1] = 1
		},
		"bad order":      func(m *Mapping) { m.Order[arch.L2][0] = m.Order[arch.L2][1] },
		"alloc range":    func(m *Mapping) { m.Alloc[arch.L1][0] = -0.1 },
		"alloc sum":      func(m *Mapping) { m.Alloc[arch.L2] = []float64{0.9, 0.9, 0.9} },
		"missing alloc":  func(m *Mapping) { m.Alloc[arch.L1] = nil },
		"short tiles":    func(m *Mapping) { m.Tile[arch.L1] = m.Tile[arch.L1][:3] },
		"short spatial":  func(m *Mapping) { m.Spatial = m.Spatial[:2] },
		"short order":    func(m *Mapping) { m.Order[arch.L1] = m.Order[arch.L1][:2] },
		"footprint over": func(m *Mapping) { m.Alloc[arch.L1] = []float64{0, 0, 0} },
	}
	for name, breaker := range breakers {
		m := base.Clone()
		breaker(&m)
		if err := s.IsMember(&m); err == nil {
			t.Errorf("%s: violation not caught", name)
		}
	}
}

func TestMinimalMappingAlwaysValid(t *testing.T) {
	for _, s := range []*Space{testSpaceCNN(t), testSpaceMTTKRP(t)} {
		m := s.minimalMapping()
		if err := s.IsMember(&m); err != nil {
			t.Fatalf("minimal mapping invalid: %v", err)
		}
		if m.SpatialPEs() != 1 {
			t.Fatal("minimal mapping must use one PE")
		}
	}
}

func TestCumulativeTile(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.minimalMapping()
	// I = 64: put 2 in L1, 2 spatial, 4 in L2, 4 in DRAM.
	m.SetChain(0, FactorChain{2, 2, 4, 4})
	l1 := m.CumulativeTile(arch.L1)
	l2 := m.CumulativeTile(arch.L2)
	dram := m.CumulativeTile(arch.DRAM)
	if l1[0] != 2 || l2[0] != 16 || dram[0] != 64 {
		t.Fatalf("cumulative tiles = %d/%d/%d, want 2/16/64", l1[0], l2[0], dram[0])
	}
}

func TestSpatialPEs(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.minimalMapping()
	m.SetChain(0, FactorChain{1, 8, 1, 8})
	m.SetChain(1, FactorChain{1, 16, 1, 8})
	if m.SpatialPEs() != 128 {
		t.Fatalf("SpatialPEs = %d, want 128", m.SpatialPEs())
	}
}

func TestCloneIndependence(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(4))
	m := s.Random(rng)
	c := m.Clone()
	c.Tile[arch.L1][0] = 99
	c.Order[arch.L2][0], c.Order[arch.L2][1] = c.Order[arch.L2][1], c.Order[arch.L2][0]
	c.Alloc[arch.L1][0] = 0.999
	c.Spatial[0] = 77
	if m.Tile[arch.L1][0] == 99 || m.Alloc[arch.L1][0] == 0.999 || m.Spatial[0] == 77 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSizeLog10Magnitude(t *testing.T) {
	// The paper quotes ~1e25 for ResNet Conv_4 and ~1e19 for MTTKRP_0 as
	// map-space sizes; our Cartesian upper bound should be in that region
	// (within a handful of orders of magnitude) and must rank CNN > MTTKRP
	// per-problem complexity the same way.
	cnnProb, err := loopnest.NewCNNProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cnnSpace, err := New(arch.Default(2), cnnProb)
	if err != nil {
		t.Fatal(err)
	}
	mttProb, err := loopnest.NewMTTKRPProblem("MTTKRP_0", 128, 1024, 4096, 2048)
	if err != nil {
		t.Fatal(err)
	}
	mttSpace, err := New(arch.Default(3), mttProb)
	if err != nil {
		t.Fatal(err)
	}
	cnnLog := cnnSpace.SizeLog10()
	mttLog := mttSpace.SizeLog10()
	if cnnLog < 18 || cnnLog > 40 {
		t.Fatalf("CNN map-space log10 = %v, expected huge (~25)", cnnLog)
	}
	if mttLog < 12 || mttLog > 35 {
		t.Fatalf("MTTKRP map-space log10 = %v", mttLog)
	}
	if cnnLog <= mttLog-3 {
		t.Fatalf("expected CNN space (%v) not drastically smaller than MTTKRP (%v)", cnnLog, mttLog)
	}
}

// Property: every random mapping's chains multiply to the problem shape and
// footprints fit allocations (redundant with IsMember but checked
// independently here).
func TestRandomMappingInvariantsProperty(t *testing.T) {
	s := testSpaceCNN(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := s.Random(rng)
		for dim, size := range s.Prob.Shape {
			if m.Chain(dim).Product() != size {
				return false
			}
		}
		if m.SpatialPEs() > s.Arch.NumPEs {
			return false
		}
		for level := arch.L1; level < arch.OnChipLevels; level++ {
			capWords := float64(s.Arch.LevelWords(level))
			for tIdx := range s.Prob.Algo.Tensors {
				if s.FootprintWords(&m, level, tIdx) > m.Alloc[level][tIdx]*capWords+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairAllocRaisesToFootprint(t *testing.T) {
	s := testSpaceCNN(t)
	m := s.minimalMapping()
	m.Alloc[arch.L1] = []float64{0, 0, 0}
	if !s.repairAlloc(&m) {
		t.Fatal("repairAlloc failed on feasible tiling")
	}
	if err := s.IsMember(&m); err != nil {
		t.Fatalf("repaired mapping invalid: %v", err)
	}
}

func TestTightenAlloc(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(77))
	m := s.Random(rng)
	if !s.TightenAlloc(&m) {
		t.Fatal("TightenAlloc failed on a valid mapping")
	}
	if err := s.IsMember(&m); err != nil {
		t.Fatalf("tightened mapping invalid: %v", err)
	}
	// Allocations must equal exact footprint shares.
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		for tIdx := range s.Prob.Algo.Tensors {
			want := s.FootprintWords(&m, level, tIdx) / capWords
			if got := m.Alloc[level][tIdx]; got != want {
				t.Fatalf("level %s tensor %d alloc %v != footprint share %v", level, tIdx, got, want)
			}
		}
	}
}

func TestTightenAllocDetectsOverflow(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.Minimal()
	for dim, size := range s.Prob.Shape {
		m.SetChain(dim, FactorChain{size, 1, 1, 1}) // whole problem in L1
	}
	if s.TightenAlloc(&m) {
		t.Fatal("TightenAlloc accepted an over-capacity tiling")
	}
}
