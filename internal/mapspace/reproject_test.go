package mapspace

import (
	"math/rand"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// TestReprojectSameShapeKeepsStructure pins that re-projecting a valid
// mapping into its own space is structure-preserving: the on-chip tiling
// and loop orders survive, only the DRAM band is (re)derived.
func TestReprojectSameShapeKeepsStructure(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		m := s.Random(rng)
		r := s.Reproject(&m)
		if err := s.IsMember(&r); err != nil {
			t.Fatalf("reprojection invalid: %v", err)
		}
		for dim := range s.Prob.Shape {
			if r.Chain(dim) != m.Chain(dim) {
				t.Fatalf("dim %d chain changed: %v -> %v", dim, m.Chain(dim), r.Chain(dim))
			}
		}
		for l := arch.L1; l < arch.NumLevels; l++ {
			for p := range r.Order[l] {
				if r.Order[l][p] != m.Order[l][p] {
					t.Fatalf("order changed at level %v", l)
				}
			}
		}
	}
}

// TestReprojectAcrossShapes is the atlas warm-start contract: a donor
// mapping solved for one problem shape re-projects into a differently
// shaped space of the same algorithm as a valid member whose on-chip
// structure follows the donor where the target's divisor structure allows.
func TestReprojectAcrossShapes(t *testing.T) {
	donorProb, err := loopnest.NewConv1DProblem("donor", 1024, 5)
	if err != nil {
		t.Fatal(err)
	}
	targetProb, err := loopnest.NewConv1DProblem("target", 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Default(2)
	donorSpace, err := New(a, donorProb)
	if err != nil {
		t.Fatal(err)
	}
	targetSpace, err := New(a, targetProb)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 20; i++ {
		donor := donorSpace.Random(rng)
		r := targetSpace.Reproject(&donor)
		if err := targetSpace.IsMember(&r); err != nil {
			t.Fatalf("cross-shape reprojection invalid: %v", err)
		}
		// The target problem must still be fully covered: per-dim factor
		// products equal the target shape, which IsMember checks; the DRAM
		// band absorbed the 4x size growth. Spot-check the donor's spatial
		// request transferred for dim 0 when divisors allow.
		if got, want := r.Chain(0)[ChainL1]*r.Chain(0)[ChainSpatial]*r.Chain(0)[ChainL2]*r.Chain(0)[ChainDRAM], targetProb.Shape[0]; got != want {
			t.Fatalf("dim 0 factorization covers %d, want %d", got, want)
		}
	}
}

// TestReprojectForeignDonor pins the defensive path: a donor with a
// different dimensionality (structurally incomplete for this space) still
// yields a valid member — the minimal all-DRAM request — instead of
// panicking, so a corrupted or mismatched atlas entry can never take down
// a search job.
func TestReprojectForeignDonor(t *testing.T) {
	s := testSpaceCNN(t) // 7 dims
	conv, err := loopnest.NewConv1DProblem("foreign", 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	foreignSpace, err := New(arch.Default(2), conv)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	donor := foreignSpace.Random(rng) // 2 dims
	r := s.Reproject(&donor)
	if err := s.IsMember(&r); err != nil {
		t.Fatalf("foreign-donor reprojection invalid: %v", err)
	}
}
