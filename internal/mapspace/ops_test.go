package mapspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerturbProducesValidNeighbors(t *testing.T) {
	for _, s := range []*Space{testSpaceCNN(t), testSpaceMTTKRP(t)} {
		rng := rand.New(rand.NewSource(31))
		m := s.Random(rng)
		changed := 0
		for i := 0; i < 100; i++ {
			n := s.Perturb(rng, &m)
			if err := s.IsMember(&n); err != nil {
				t.Fatalf("%s: perturbed mapping invalid: %v", s.Prob.Name, err)
			}
			if n.String() != m.String() {
				changed++
			}
			m = n
		}
		if changed < 60 {
			t.Fatalf("%s: only %d/100 perturbations changed the mapping", s.Prob.Name, changed)
		}
	}
}

func TestPerturbDoesNotMutateInput(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(32))
	m := s.Random(rng)
	snapshot := m.String()
	for i := 0; i < 20; i++ {
		s.Perturb(rng, &m)
	}
	if m.String() != snapshot {
		t.Fatal("Perturb mutated its input mapping")
	}
}

func TestCrossoverProducesValidChildren(t *testing.T) {
	for _, s := range []*Space{testSpaceCNN(t), testSpaceMTTKRP(t)} {
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 50; i++ {
			a := s.Random(rng)
			b := s.Random(rng)
			child := s.Crossover(rng, &a, &b)
			if err := s.IsMember(&child); err != nil {
				t.Fatalf("%s: crossover child invalid: %v", s.Prob.Name, err)
			}
		}
	}
}

func TestCrossoverMixesParents(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(34))
	a := s.Random(rng)
	b := s.Random(rng)
	fromA, fromB := 0, 0
	for i := 0; i < 30; i++ {
		child := s.Crossover(rng, &a, &b)
		for dim := range s.Prob.Shape {
			switch child.Chain(dim) {
			case a.Chain(dim):
				fromA++
			case b.Chain(dim):
				fromB++
			}
		}
	}
	if fromA == 0 || fromB == 0 {
		t.Fatalf("crossover never mixed: a=%d b=%d", fromA, fromB)
	}
}

func TestMutateRateZeroIsIdentity(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(35))
	m := s.Random(rng)
	out := s.Mutate(rng, &m, 0)
	if out.String() != m.String() {
		t.Fatal("rate-0 mutation changed the mapping")
	}
}

func TestMutateRateOneChanges(t *testing.T) {
	s := testSpaceCNN(t)
	rng := rand.New(rand.NewSource(36))
	m := s.Random(rng)
	same := 0
	for i := 0; i < 20; i++ {
		out := s.Mutate(rng, &m, 1)
		if err := s.IsMember(&out); err != nil {
			t.Fatalf("mutated mapping invalid: %v", err)
		}
		if out.String() == m.String() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("rate-1 mutation left mapping unchanged %d/20 times", same)
	}
}

// Property: arbitrary chains of operator applications preserve validity.
func TestOperatorChainsStayValidProperty(t *testing.T) {
	s := testSpaceMTTKRP(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := s.Random(rng)
		b := s.Random(rng)
		for step := 0; step < 10; step++ {
			switch rng.Intn(3) {
			case 0:
				a = s.Perturb(rng, &a)
			case 1:
				a = s.Crossover(rng, &a, &b)
			case 2:
				a = s.Mutate(rng, &a, 0.3)
			}
			if s.IsMember(&a) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomMapping(b *testing.B) {
	s := testSpaceCNN(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Random(rng)
	}
}

func BenchmarkPerturb(b *testing.B) {
	s := testSpaceCNN(b)
	rng := rand.New(rand.NewSource(1))
	m := s.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = s.Perturb(rng, &m)
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	s := testSpaceCNN(b)
	rng := rand.New(rand.NewSource(1))
	m := s.Random(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vec := s.Encode(&m)
		if _, err := s.Decode(vec); err != nil {
			b.Fatal(err)
		}
	}
}
