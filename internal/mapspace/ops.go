package mapspace

import (
	"math/rand"

	"mindmappings/internal/arch"
)

// This file implements the neighborhood and recombination operators used by
// the black-box baselines (paper Appendix A): Perturb for simulated
// annealing's neighbor moves and the gradient search's random injections,
// Crossover and Mutate for the genetic algorithm. All operators return
// valid mappings (invalid intermediates are repaired by projection).

// Perturb returns a valid neighbor of m produced by one random structural
// move: re-sampling one dimension's factor chain, swapping two loops in one
// level's order, shifting buffer allocation between tensors, or moving one
// prime factor between bands of a dimension.
func (s *Space) Perturb(rng *rand.Rand, m *Mapping) Mapping {
	const attempts = 8
	for a := 0; a < attempts; a++ {
		out := m.Clone()
		switch rng.Intn(4) {
		case 0:
			s.moveResampleChain(rng, &out)
		case 1:
			s.moveSwapOrder(rng, &out)
		case 2:
			s.moveShiftAlloc(rng, &out)
		case 3:
			s.moveFactorBetweenBands(rng, &out)
		}
		out = s.Repair(out)
		if s.IsMember(&out) == nil {
			return out
		}
	}
	return m.Clone()
}

// moveResampleChain re-draws one dimension's tile factorization under the
// spatial budget left by the other dimensions.
func (s *Space) moveResampleChain(rng *rand.Rand, m *Mapping) {
	dim := rng.Intn(s.NumDims())
	budget := s.Arch.NumPEs
	for d2, sp := range m.Spatial {
		if d2 != dim {
			budget /= sp
		}
	}
	var eligible []FactorChain
	for _, c := range s.chains[dim] {
		if c[ChainSpatial] <= budget {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return
	}
	m.SetChain(dim, eligible[rng.Intn(len(eligible))])
}

func (s *Space) moveSwapOrder(rng *rand.Rand, m *Mapping) {
	d := s.NumDims()
	if d < 2 {
		return
	}
	l := arch.Level(rng.Intn(int(arch.NumLevels)))
	i, j := rng.Intn(d), rng.Intn(d)
	for i == j {
		j = rng.Intn(d)
	}
	m.Order[l][i], m.Order[l][j] = m.Order[l][j], m.Order[l][i]
}

func (s *Space) moveShiftAlloc(rng *rand.Rand, m *Mapping) {
	nt := s.NumTensors()
	if nt < 2 {
		return
	}
	level := arch.Level(rng.Intn(arch.OnChipLevels))
	from, to := rng.Intn(nt), rng.Intn(nt)
	for from == to {
		to = rng.Intn(nt)
	}
	delta := rng.Float64() * 0.2
	if delta > m.Alloc[level][from] {
		delta = m.Alloc[level][from]
	}
	m.Alloc[level][from] -= delta
	m.Alloc[level][to] += delta
}

// moveFactorBetweenBands moves one prime factor of a dimension between two
// bands (e.g. from the DRAM loop into the L1 tile), the smallest structural
// step in tiling space.
func (s *Space) moveFactorBetweenBands(rng *rand.Rand, m *Mapping) {
	dim := rng.Intn(s.NumDims())
	c := m.Chain(dim)
	var srcs []int
	for band, f := range c {
		if f > 1 {
			srcs = append(srcs, band)
		}
	}
	if len(srcs) == 0 {
		return
	}
	src := srcs[rng.Intn(len(srcs))]
	dst := rng.Intn(4)
	for dst == src {
		dst = rng.Intn(4)
	}
	p := smallestPrimeFactor(c[src])
	c[src] /= p
	c[dst] *= p
	m.SetChain(dim, c)
}

// Crossover recombines two parents attribute-wise (paper Appendix A: "A
// cross-over results in swapping attributes of one individual with the
// other"): each dimension's chain comes from either parent, each level's
// loop order from either parent, and allocations are blended. The child is
// repaired to validity.
func (s *Space) Crossover(rng *rand.Rand, a, b *Mapping) Mapping {
	child := a.Clone()
	for dim := 0; dim < s.NumDims(); dim++ {
		if rng.Intn(2) == 1 {
			child.SetChain(dim, b.Chain(dim))
		}
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		if rng.Intn(2) == 1 {
			copy(child.Order[l], b.Order[l])
		}
	}
	lambda := rng.Float64()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		for t := range child.Alloc[level] {
			child.Alloc[level][t] = lambda*a.Alloc[level][t] + (1-lambda)*b.Alloc[level][t]
		}
	}
	return s.Repair(child)
}

// Mutate randomizes each attribute group independently with probability
// rate (paper Appendix A: "a mutation is implemented as a .05 probability
// of a random update for each of the mapping's attributes") and repairs the
// result.
func (s *Space) Mutate(rng *rand.Rand, m *Mapping, rate float64) Mapping {
	out := m.Clone()
	changed := false
	for dim := 0; dim < s.NumDims(); dim++ {
		if rng.Float64() < rate {
			c := s.chains[dim][rng.Intn(len(s.chains[dim]))]
			out.SetChain(dim, c)
			changed = true
		}
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		if rng.Float64() < rate {
			s.moveSwapOrder(rng, &out)
			changed = true
		}
	}
	if rng.Float64() < rate {
		s.moveShiftAlloc(rng, &out)
		changed = true
	}
	if !changed {
		return out
	}
	return s.Repair(out)
}
