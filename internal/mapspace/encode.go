package mapspace

import (
	"fmt"
	"math"

	"mindmappings/internal/arch"
)

// Vector layout (paper §5.5): the surrogate input is the concatenation of
//
//	[ problem id | tile-factor log2s (3 levels x D) | spatial log2s (D) |
//	  loop-order ranks (3 levels x D) | allocations (2 levels x T) ]
//
// which yields 62 values for CNN-Layer (7+21+7+21+6) and 40 for MTTKRP
// (4+12+4+12+8), exactly the input widths the paper reports.

// VectorLen returns the length of the encoded mapping vector including the
// problem-id prefix.
func (s *Space) VectorLen() int {
	d := s.NumDims()
	return d + // problem id
		int(arch.NumLevels)*d + // temporal tile factors
		d + // spatial factors
		int(arch.NumLevels)*d + // loop-order ranks
		arch.OnChipLevels*s.NumTensors() // buffer allocations
}

// PIDLen returns the length of the problem-id prefix.
func (s *Space) PIDLen() int { return s.NumDims() }

// Encode flattens a mapping into the surrogate's input vector (paper
// §4.1.2: each programmable attribute converted to floats and flattened).
// Tile and spatial factors are encoded in log2, loop orders as normalized
// rank positions, allocations as raw fractions; the problem id (log2 of
// each dimension size) is the prefix.
func (s *Space) Encode(m *Mapping) []float64 {
	return s.EncodeInto(nil, m)
}

// EncodeInto is Encode writing into dst (grown when too short, reused
// otherwise), so encode-heavy hot paths — cache-key construction, batched
// surrogate scoring — stay allocation-free.
func (s *Space) EncodeInto(dst []float64, m *Mapping) []float64 {
	d := s.NumDims()
	if cap(dst) < s.VectorLen() {
		dst = make([]float64, 0, s.VectorLen())
	}
	vec := s.Prob.AppendPID(dst[:0]) // problem-id prefix
	for l := arch.L1; l < arch.NumLevels; l++ {
		for dim := 0; dim < d; dim++ {
			vec = append(vec, math.Log2(float64(m.Tile[l][dim])))
		}
	}
	for dim := 0; dim < d; dim++ {
		vec = append(vec, math.Log2(float64(m.Spatial[dim])))
	}
	denom := float64(d - 1)
	if denom <= 0 {
		denom = 1
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		pos := vec[len(vec) : len(vec)+d]
		vec = vec[:len(vec)+d]
		for i := range pos {
			pos[i] = 0
		}
		for p, dim := range m.Order[l] {
			pos[dim] = float64(p) / denom
		}
	}
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		vec = append(vec, m.Alloc[level]...)
	}
	return vec
}

// Decode parses a surrogate-layout vector (such as one produced by a
// gradient step on an encoded mapping) and projects it onto the nearest
// valid mapping. The problem-id prefix is ignored — the space already knows
// its problem.
func (s *Space) Decode(vec []float64) (Mapping, error) {
	if len(vec) != s.VectorLen() {
		return Mapping{}, fmt.Errorf("mapspace: decode vector length %d, want %d",
			len(vec), s.VectorLen())
	}
	d := s.NumDims()
	i := d // skip problem id
	des := desired{logs: make([][4]float64, d)}
	levelToSlot := [arch.NumLevels]int{ChainL1, ChainL2, ChainDRAM}
	for l := arch.L1; l < arch.NumLevels; l++ {
		for dim := 0; dim < d; dim++ {
			des.logs[dim][levelToSlot[l]] = sanitizeLog(vec[i])
			i++
		}
	}
	for dim := 0; dim < d; dim++ {
		des.logs[dim][ChainSpatial] = sanitizeLog(vec[i])
		i++
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		des.ranks[l] = make([]float64, d)
		for dim := 0; dim < d; dim++ {
			r := vec[i]
			if math.IsNaN(r) {
				r = 0
			}
			des.ranks[l][dim] = r
			i++
		}
	}
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		des.alloc[level] = make([]float64, s.NumTensors())
		for t := range des.alloc[level] {
			des.alloc[level][t] = clamp01(vec[i])
			i++
		}
	}
	return s.projectDesired(des), nil
}

// sanitizeLog bounds a desired log2 tile factor so NaNs and infinities from
// a runaway gradient cannot poison projection.
func sanitizeLog(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	const maxLog = 40 // 2^40 exceeds any dimension here
	if v > maxLog {
		return maxLog
	}
	if v < -maxLog {
		return -maxLog
	}
	return v
}
