package mapspace

import (
	"fmt"
	"math"
	"math/rand"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// allocTolerance absorbs floating-point slop in allocation-sum and
// footprint-fit comparisons.
const allocTolerance = 1e-9

// Space is the mapping space M(a,p) for one accelerator and one problem
// (paper Definition 2.2). It provides the three routines the Mind Mappings
// API requires (Appendix B): Random (getMapping), IsMember, and Project
// (getProjection), plus the perturbation/recombination operators the
// black-box baselines use.
type Space struct {
	Arch arch.Spec
	Prob loopnest.Problem

	chains [][]FactorChain // per-dimension ordered 4-way factorizations
}

// New constructs the map space for the given accelerator and problem,
// pre-enumerating per-dimension tile factorizations. It fails if the
// problem or architecture is invalid, or if even the minimal tiling cannot
// fit the on-chip buffers.
func New(a arch.Spec, p loopnest.Problem) (*Space, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("mapspace: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("mapspace: %w", err)
	}
	s := &Space{Arch: a, Prob: p}
	for _, size := range p.Shape {
		s.chains = append(s.chains, EnumerateChains(size))
	}
	min := s.minimalMapping()
	if err := s.IsMember(&min); err != nil {
		return nil, fmt.Errorf("mapspace: even minimal tiling invalid: %w", err)
	}
	return s, nil
}

// NumDims returns the number of problem dimensions.
func (s *Space) NumDims() int { return len(s.Prob.Shape) }

// NumTensors returns the number of tensors in the algorithm.
func (s *Space) NumTensors() int { return len(s.Prob.Algo.Tensors) }

// Chains exposes the pre-enumerated factorization chains of dimension d.
func (s *Space) Chains(d int) []FactorChain { return s.chains[d] }

// FootprintWords returns tensor t's resident footprint in words at an
// on-chip level under mapping m.
func (s *Space) FootprintWords(m *Mapping, level arch.Level, t int) float64 {
	tile := m.CumulativeTile(level)
	return float64(s.Prob.Algo.Tensors[t].Footprint(tile))
}

// totalFootprint returns the summed tensor footprints at a level.
func (s *Space) totalFootprint(m *Mapping, level arch.Level) float64 {
	tile := m.CumulativeTile(level)
	total := 0.0
	for t := range s.Prob.Algo.Tensors {
		total += float64(s.Prob.Algo.Tensors[t].Footprint(tile))
	}
	return total
}

// fitsBuffers reports whether the summed footprints fit the raw capacity of
// both on-chip levels (a necessary condition for any allocation to exist).
func (s *Space) fitsBuffers(m *Mapping) bool {
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		if s.totalFootprint(m, level) > float64(s.Arch.LevelWords(level))+allocTolerance {
			return false
		}
	}
	return true
}

// IsMember checks mapping validity (paper §4.1.1's isMember): structural
// shape, exact factorization of every dimension, spatial budget,
// permutation validity, allocation bounds, and per-tensor footprint fit
// within the allocated buffer share. A nil error means m ∈ M(a,p).
func (s *Space) IsMember(m *Mapping) error {
	d := s.NumDims()
	for l := arch.L1; l < arch.NumLevels; l++ {
		if len(m.Tile[l]) != d {
			return fmt.Errorf("mapspace: level %s has %d tile factors, want %d", l, len(m.Tile[l]), d)
		}
		if len(m.Order[l]) != d {
			return fmt.Errorf("mapspace: level %s has %d order entries, want %d", l, len(m.Order[l]), d)
		}
	}
	if len(m.Spatial) != d {
		return fmt.Errorf("mapspace: %d spatial factors, want %d", len(m.Spatial), d)
	}
	for dim := 0; dim < d; dim++ {
		c := m.Chain(dim)
		for _, f := range c {
			if f < 1 {
				return fmt.Errorf("mapspace: dim %s has non-positive factor in %v",
					s.Prob.Algo.DimNames[dim], c)
			}
		}
		if c.Product() != s.Prob.Shape[dim] {
			return fmt.Errorf("mapspace: dim %s factors %v product %d != size %d",
				s.Prob.Algo.DimNames[dim], c, c.Product(), s.Prob.Shape[dim])
		}
	}
	if pes := m.SpatialPEs(); pes > s.Arch.NumPEs {
		return fmt.Errorf("mapspace: spatial product %d exceeds %d PEs", pes, s.Arch.NumPEs)
	}
	for l := arch.L1; l < arch.NumLevels; l++ {
		if !isPermutation(m.Order[l], d) {
			return fmt.Errorf("mapspace: level %s order %v is not a permutation", l, m.Order[l])
		}
	}
	nt := s.NumTensors()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		if len(m.Alloc[level]) != nt {
			return fmt.Errorf("mapspace: level %s has %d allocations, want %d",
				level, len(m.Alloc[level]), nt)
		}
		sum := 0.0
		for t, a := range m.Alloc[level] {
			if a < 0 || a > 1 {
				return fmt.Errorf("mapspace: level %s tensor %s allocation %v out of [0,1]",
					level, s.Prob.Algo.Tensors[t].Name, a)
			}
			sum += a
		}
		if sum > 1+allocTolerance {
			return fmt.Errorf("mapspace: level %s allocations sum to %v > 1", level, sum)
		}
		capWords := float64(s.Arch.LevelWords(level))
		tile := m.CumulativeTile(level)
		for t := range s.Prob.Algo.Tensors {
			fp := float64(s.Prob.Algo.Tensors[t].Footprint(tile))
			if fp > m.Alloc[level][t]*capWords+allocTolerance {
				return fmt.Errorf("mapspace: level %s tensor %s footprint %.0f words exceeds allocated %.0f",
					level, s.Prob.Algo.Tensors[t].Name, fp, m.Alloc[level][t]*capWords)
			}
		}
	}
	return nil
}

func isPermutation(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Random returns a uniformly sampled valid mapping (the paper's getMapping;
// §4.1.1 uses uniform random sampling with re-sampling of invalid points).
// After a bounded number of rejected tilings it falls back to the minimal
// mapping, which is always valid.
func (s *Space) Random(rng *rand.Rand) Mapping {
	const maxTries = 64
	for try := 0; try < maxTries; try++ {
		m := s.randomTiling(rng)
		if !s.fitsBuffers(&m) {
			continue
		}
		s.randomOrders(rng, &m)
		s.randomAlloc(rng, &m)
		return m
	}
	min := s.minimalMapping()
	s.randomOrders(rng, &min)
	return min
}

// randomTiling samples per-dimension factor chains under the PE budget,
// visiting dimensions in random order so no dimension systematically starves
// the spatial budget.
func (s *Space) randomTiling(rng *rand.Rand) Mapping {
	d := s.NumDims()
	m := s.emptyMapping()
	budget := s.Arch.NumPEs
	for _, dim := range rng.Perm(d) {
		// Filter to chains that respect the remaining spatial budget.
		var eligible []FactorChain
		for _, c := range s.chains[dim] {
			if c[ChainSpatial] <= budget {
				eligible = append(eligible, c)
			}
		}
		c := eligible[rng.Intn(len(eligible))]
		m.SetChain(dim, c)
		budget /= c[ChainSpatial]
	}
	return m
}

func (s *Space) randomOrders(rng *rand.Rand, m *Mapping) {
	for l := arch.L1; l < arch.NumLevels; l++ {
		m.Order[l] = rng.Perm(s.NumDims())
	}
}

// randomAlloc assigns each tensor its required footprint share plus a
// random split of (part of) the remaining capacity, so allocation stays a
// genuinely free programmable attribute while remaining valid.
func (s *Space) randomAlloc(rng *rand.Rand, m *Mapping) {
	nt := s.NumTensors()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		tile := m.CumulativeTile(level)
		shares := make([]float64, nt)
		sum := 0.0
		for t := range shares {
			shares[t] = float64(s.Prob.Algo.Tensors[t].Footprint(tile)) / capWords
			sum += shares[t]
		}
		slack := (1 - sum) * rng.Float64()
		weights := make([]float64, nt)
		wsum := 0.0
		for t := range weights {
			weights[t] = rng.Float64() + 1e-6
			wsum += weights[t]
		}
		m.Alloc[level] = make([]float64, nt)
		for t := range shares {
			m.Alloc[level][t] = shares[t] + slack*weights[t]/wsum
		}
	}
}

func (s *Space) emptyMapping() Mapping {
	d := s.NumDims()
	var m Mapping
	for l := range m.Tile {
		m.Tile[l] = make([]int, d)
		for i := range m.Tile[l] {
			m.Tile[l][i] = 1
		}
	}
	m.Spatial = make([]int, d)
	for i := range m.Spatial {
		m.Spatial[i] = 1
	}
	for l := range m.Order {
		m.Order[l] = identityPerm(d)
	}
	for l := range m.Alloc {
		m.Alloc[l] = make([]float64, s.NumTensors())
	}
	return m
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Minimal returns the always-valid baseline mapping: every loop at DRAM,
// one PE, identity loop orders, footprint-covering allocations. It is a
// convenient deterministic starting point for tests and examples.
func (s *Space) Minimal() Mapping {
	return s.minimalMapping()
}

// minimalMapping places every loop at DRAM (all on-chip tiles of size 1),
// which fits any reasonable buffer configuration; allocations are
// footprint-proportional with the slack spread evenly.
func (s *Space) minimalMapping() Mapping {
	m := s.emptyMapping()
	for dim, size := range s.Prob.Shape {
		m.SetChain(dim, FactorChain{1, 1, 1, size})
	}
	s.coverAlloc(&m)
	return m
}

// TightenAlloc sets every buffer allocation to exactly its tensor's
// footprint share — the minimum valid (and, under a monotone
// allocation-energy model, cheapest) allocation for the mapping's tiling.
// It returns false when the tiling does not fit raw capacity.
func (s *Space) TightenAlloc(m *Mapping) bool {
	nt := s.NumTensors()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		tile := m.CumulativeTile(level)
		sum := 0.0
		if len(m.Alloc[level]) != nt {
			m.Alloc[level] = make([]float64, nt)
		}
		for t := range s.Prob.Algo.Tensors {
			share := float64(s.Prob.Algo.Tensors[t].Footprint(tile)) / capWords
			m.Alloc[level][t] = share
			sum += share
		}
		if sum > 1+allocTolerance {
			return false
		}
	}
	return true
}

// coverAlloc sets allocations to exactly cover footprints plus an even
// share of the slack. It assumes footprints fit raw capacity.
func (s *Space) coverAlloc(m *Mapping) {
	nt := s.NumTensors()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		tile := m.CumulativeTile(level)
		sum := 0.0
		shares := make([]float64, nt)
		for t := range shares {
			shares[t] = float64(s.Prob.Algo.Tensors[t].Footprint(tile)) / capWords
			sum += shares[t]
		}
		slack := math.Max(0, 1-sum)
		m.Alloc[level] = make([]float64, nt)
		for t := range shares {
			m.Alloc[level][t] = shares[t] + slack/float64(nt)
		}
	}
}

// repairAlloc projects the mapping's allocations onto the valid region:
// every tensor gets at least its footprint share, surpluses are scaled to
// fit the remaining capacity, and proportions are otherwise preserved. It
// returns false when the tiling's footprints exceed raw capacity (no
// allocation can fix that).
func (s *Space) repairAlloc(m *Mapping) bool {
	nt := s.NumTensors()
	for level := arch.L1; level < arch.OnChipLevels; level++ {
		capWords := float64(s.Arch.LevelWords(level))
		tile := m.CumulativeTile(level)
		shares := make([]float64, nt)
		sumShares := 0.0
		for t := range shares {
			shares[t] = float64(s.Prob.Algo.Tensors[t].Footprint(tile)) / capWords
			sumShares += shares[t]
		}
		if sumShares > 1+allocTolerance {
			return false
		}
		if len(m.Alloc[level]) != nt {
			m.Alloc[level] = make([]float64, nt)
		}
		surplus := make([]float64, nt)
		sumSurplus := 0.0
		for t := range shares {
			surplus[t] = math.Max(0, math.Min(1, m.Alloc[level][t])-shares[t])
			sumSurplus += surplus[t]
		}
		slack := 1 - sumShares
		scale := 1.0
		if sumSurplus > slack && sumSurplus > 0 {
			scale = slack / sumSurplus
		}
		for t := range shares {
			m.Alloc[level][t] = shares[t] + surplus[t]*scale
		}
	}
	return true
}

// SizeLog10 returns log10 of the Cartesian-product upper bound on |M|
// (paper §2.1: |M| = O(∏|P_d|)): factorization choices per dimension,
// loop orders per level, and bank-granular allocations per on-chip level.
func (s *Space) SizeLog10() float64 {
	total := 0.0
	for _, size := range s.Prob.Shape {
		total += math.Log10(countChains(size))
	}
	d := float64(s.NumDims())
	logFact := func(n float64) float64 {
		lg, _ := math.Lgamma(n + 1)
		return lg / math.Ln10
	}
	total += float64(arch.NumLevels) * logFact(d)
	// Allocations at bank granularity: compositions of Banks into
	// NumTensors non-negative parts per level: C(Banks+T-1, T-1).
	b := float64(s.Arch.Banks)
	t := float64(s.NumTensors())
	logBinom := logFact(b+t-1) - logFact(b) - logFact(t-1)
	total += float64(arch.OnChipLevels) * logBinom
	return total
}
