package mapspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

func TestVectorLenMatchesPaper(t *testing.T) {
	// Paper §5.5: "The input mapping vector is 62/40 values in length for
	// CNN-Layer/MTTKRP".
	cnnProb, err := loopnest.NewCNNProblem("p", 4, 16, 8, 14, 14, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cnn, err := New(arch.Default(2), cnnProb)
	if err != nil {
		t.Fatal(err)
	}
	if got := cnn.VectorLen(); got != 62 {
		t.Fatalf("CNN vector length = %d, want 62", got)
	}
	mttProb, err := loopnest.NewMTTKRPProblem("p", 64, 128, 256, 128)
	if err != nil {
		t.Fatal(err)
	}
	mtt, err := New(arch.Default(3), mttProb)
	if err != nil {
		t.Fatal(err)
	}
	if got := mtt.VectorLen(); got != 40 {
		t.Fatalf("MTTKRP vector length = %d, want 40", got)
	}
}

func TestEncodeLayout(t *testing.T) {
	s := testSpaceMTTKRP(t)
	m := s.minimalMapping()
	vec := s.Encode(&m)
	if len(vec) != s.VectorLen() {
		t.Fatalf("encoded length %d != %d", len(vec), s.VectorLen())
	}
	// PID prefix: log2 of shape (64,128,256,128).
	for i, want := range []float64{6, 7, 8, 7} {
		if math.Abs(vec[i]-want) > 1e-12 {
			t.Fatalf("pid = %v", vec[:4])
		}
	}
	// Minimal mapping: all on-chip tiles 1 -> log2 = 0; DRAM factors carry
	// everything.
	d := s.NumDims()
	for i := 0; i < 2*d; i++ { // L1 and L2 tile blocks
		if vec[d+i] != 0 {
			t.Fatalf("on-chip tile log at %d = %v, want 0", d+i, vec[d+i])
		}
	}
	for dim := 0; dim < d; dim++ { // DRAM block holds full sizes
		if math.Abs(vec[d+2*d+dim]-vec[dim]) > 1e-12 {
			t.Fatalf("DRAM tile log != pid log at dim %d", dim)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, s := range []*Space{testSpaceCNN(t), testSpaceMTTKRP(t)} {
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 40; i++ {
			m := s.Random(rng)
			vec := s.Encode(&m)
			back, err := s.Decode(vec)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.IsMember(&back); err != nil {
				t.Fatalf("decoded mapping invalid: %v", err)
			}
			// A valid mapping must round-trip its structure exactly: the
			// desired point is already a member, so projection is identity
			// on chains and orders.
			for dim := range s.Prob.Shape {
				if back.Chain(dim) != m.Chain(dim) {
					t.Fatalf("%s: chain round-trip %v -> %v", s.Prob.Name, m.Chain(dim), back.Chain(dim))
				}
			}
			for l := arch.L1; l < arch.NumLevels; l++ {
				for p := range m.Order[l] {
					if m.Order[l][p] != back.Order[l][p] {
						t.Fatalf("order round-trip failed at level %s", l)
					}
				}
			}
			for level := arch.L1; level < arch.OnChipLevels; level++ {
				for tIdx := range m.Alloc[level] {
					if math.Abs(m.Alloc[level][tIdx]-back.Alloc[level][tIdx]) > 1e-6 {
						t.Fatalf("alloc round-trip %v -> %v", m.Alloc[level], back.Alloc[level])
					}
				}
			}
		}
	}
}

func TestDecodeWrongLength(t *testing.T) {
	s := testSpaceCNN(t)
	if _, err := s.Decode(make([]float64, 3)); err == nil {
		t.Fatal("accepted short vector")
	}
}

// Property: decoding arbitrary noise vectors always yields valid mappings —
// this is what makes gradient steps in encoded space safe.
func TestDecodeNoiseProperty(t *testing.T) {
	s := testSpaceCNN(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vec := make([]float64, s.VectorLen())
		for i := range vec {
			switch rng.Intn(10) {
			case 0:
				vec[i] = math.NaN()
			case 1:
				vec[i] = math.Inf(1)
			case 2:
				vec[i] = math.Inf(-1)
			default:
				vec[i] = rng.NormFloat64() * 10
			}
		}
		m, err := s.Decode(vec)
		if err != nil {
			return false
		}
		return s.IsMember(&m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeLog(t *testing.T) {
	if sanitizeLog(math.NaN()) != 0 {
		t.Fatal("NaN must sanitize to 0")
	}
	if sanitizeLog(1e9) != 40 || sanitizeLog(-1e9) != -40 {
		t.Fatal("infinite logs must clamp")
	}
	if sanitizeLog(3.5) != 3.5 {
		t.Fatal("ordinary values must pass through")
	}
}
