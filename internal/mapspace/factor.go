package mapspace

import (
	"math"
	"sort"
)

// Divisors returns the positive divisors of n in ascending order.
func Divisors(n int) []int {
	if n < 1 {
		return nil
	}
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if other := n / d; other != d {
				out = append(out, other)
			}
		}
	}
	sort.Ints(out)
	return out
}

// FactorChain is an ordered 4-way factorization of a dimension size into
// the per-band tile factors (L1 temporal, spatial, L2 temporal, DRAM
// temporal). The product of the four entries equals the dimension size.
type FactorChain [4]int

// Positions within a FactorChain.
const (
	ChainL1 = iota
	ChainSpatial
	ChainL2
	ChainDRAM
)

// Product returns the product of the chain's factors.
func (c FactorChain) Product() int {
	return c[0] * c[1] * c[2] * c[3]
}

// Logs returns the base-2 logarithms of the chain's factors.
func (c FactorChain) Logs() [4]float64 {
	var out [4]float64
	for i, f := range c {
		out[i] = math.Log2(float64(f))
	}
	return out
}

// LogDistance returns the squared Euclidean distance between the chain's
// log2 factors and the desired log2 factors, the metric used by projection
// (paper §4.2: "nearest neighbor valid mappings based on euclidean
// distance").
func (c FactorChain) LogDistance(desired [4]float64) float64 {
	sum := 0.0
	for i, f := range c {
		d := math.Log2(float64(f)) - desired[i]
		sum += d * d
	}
	return sum
}

// EnumerateChains returns every ordered 4-way factorization of n. The count
// is the multiplicative function ∏ C(e_i+3, 3) over n's prime-power
// exponents — a few hundred entries for the dimension sizes in Table 1.
func EnumerateChains(n int) []FactorChain {
	if n < 1 {
		return nil
	}
	divs := Divisors(n)
	var out []FactorChain
	for _, a := range divs {
		rem1 := n / a
		for _, b := range Divisors(rem1) {
			rem2 := rem1 / b
			for _, c := range Divisors(rem2) {
				out = append(out, FactorChain{a, b, c, rem2 / c})
			}
		}
	}
	return out
}

// NearestChain returns the chain among candidates minimizing LogDistance to
// desired, considering only chains whose spatial factor is at most
// spatialCap (<= 0 means uncapped). The boolean reports whether any chain
// qualified.
func NearestChain(candidates []FactorChain, desired [4]float64, spatialCap int) (FactorChain, bool) {
	best := FactorChain{}
	bestDist := math.Inf(1)
	found := false
	for _, c := range candidates {
		if spatialCap > 0 && c[ChainSpatial] > spatialCap {
			continue
		}
		if d := c.LogDistance(desired); d < bestDist {
			bestDist = d
			best = c
			found = true
		}
	}
	return best, found
}

// countChains returns the number of ordered 4-way factorizations of n
// without materializing them, used for map-space size estimation.
func countChains(n int) float64 {
	count := 0.0
	for _, a := range Divisors(n) {
		rem1 := n / a
		for _, b := range Divisors(rem1) {
			count += float64(len(Divisors(rem1 / b)))
		}
	}
	return count
}

// smallestPrimeFactor returns the smallest prime dividing n, or 1 for n<=1.
func smallestPrimeFactor(n int) int {
	if n <= 1 {
		return 1
	}
	for p := 2; p*p <= n; p++ {
		if n%p == 0 {
			return p
		}
	}
	return n
}
