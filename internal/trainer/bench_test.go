package trainer

import (
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/surrogate"
)

// benchConfig mirrors SmallConfig's network on a bench-scale dataset so
// the BENCH_search.json training-throughput rows are comparable across
// PRs.
func benchConfig() surrogate.Config {
	cfg := surrogate.SmallConfig()
	cfg.Samples = 4000
	cfg.Problems = 8
	cfg.Train.Epochs = 4
	return cfg
}

// BenchmarkDatasetGeneration measures Phase-1a throughput: labeled
// (mapping, cost) samples per second through the reference cost model —
// the dominant wall-clock cost of a training job.
func BenchmarkDatasetGeneration(b *testing.B) {
	cfg := benchConfig()
	algo := loopnest.MustAlgorithm("cnn-layer")
	a := arch.Default(len(algo.Tensors) - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := surrogate.Generate(algo, a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ds.Len() != cfg.Samples {
			b.Fatalf("%d samples", ds.Len())
		}
	}
	b.ReportMetric(float64(cfg.Samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkTrainingEpochs measures Phase-1b throughput: supervised
// training epochs per second on the SmallConfig network at bench scale.
func BenchmarkTrainingEpochs(b *testing.B) {
	cfg := benchConfig()
	algo := loopnest.MustAlgorithm("cnn-layer")
	a := arch.Default(len(algo.Tensors) - 1)
	ds, err := surrogate.Generate(algo, a, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := surrogate.Train(ds, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Train.Epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/s")
}
