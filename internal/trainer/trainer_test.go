package trainer

import (
	"context"
	"testing"
	"time"

	"mindmappings/internal/modelstore"
)

func testPipeline(t *testing.T, workers, queueCap int) *Pipeline {
	t.Helper()
	st, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := New(st, workers, queueCap)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return p
}

// tinyRequest is a seconds-scale end-to-end training request.
func tinyRequest() Request {
	return Request{
		Algo:        "conv1d",
		Samples:     500,
		Problems:    3,
		Epochs:      5,
		HiddenSizes: []int{16},
		Seed:        3,
	}
}

func waitStatus(t *testing.T, p *Pipeline, id string, timeout time.Duration) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	job, err := p.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for job %s: %v", id, err)
	}
	return job
}

func TestPipelineEndToEnd(t *testing.T) {
	p := testPipeline(t, 1, 4)
	job, err := p.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, p, job.ID, 2*time.Minute)
	if done.Status != StatusDone {
		t.Fatalf("status %s, error %q", done.Status, done.Error)
	}
	if done.Artifact == nil {
		t.Fatal("done job has no artifact")
	}
	m := done.Artifact
	if m.Algo != "conv1d" || m.Version != 1 || m.Epochs != 5 || m.Samples != 500 {
		t.Fatalf("manifest: %+v", m)
	}
	if len(m.TrainLoss) != 5 || m.FinalTrain <= 0 {
		t.Fatalf("loss history: %v", m.TrainLoss)
	}
	if done.Progress.Phase != PhasePublish || done.Progress.Epoch != 5 {
		t.Fatalf("final progress: %+v", done.Progress)
	}
	// The artifact is loadable and resolvable from the store.
	if _, err := p.Store().Load(m.ID); err != nil {
		t.Fatal(err)
	}
	best, ok := p.Store().Resolve(m.AlgoFP)
	if !ok || best.ID != m.ID {
		t.Fatalf("resolve: %+v ok=%v", best, ok)
	}
	if st := p.Stats(); st.Done != 1 || st.Submitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWatchAndTrace pins the telemetry contract: Watch streams
// monotonically progressing events ending with the terminal status, the
// stream closes at completion, and the trace tree holds the
// generate/train/publish phase spans (all ended, correctly ordered).
func TestWatchAndTrace(t *testing.T) {
	p := testPipeline(t, 1, 4)
	job, err := p.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	hist, ch, cancel, ok := p.Watch(job.ID)
	if !ok {
		t.Fatal("Watch: unknown job")
	}
	defer cancel()
	events := append([]Event(nil), hist...)
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case ev, open := <-ch:
			if !open {
				goto drained
			}
			events = append(events, ev)
		case <-deadline:
			t.Fatal("event stream never closed")
		}
	}
drained:
	if len(events) == 0 {
		t.Fatal("no events published")
	}
	last := events[len(events)-1]
	if last.Status != StatusDone {
		t.Fatalf("final event status %s (error %q)", last.Status, last.Error)
	}
	// Progress never regresses: samples-done and epoch are monotone.
	samples, epoch := 0, 0
	for i, ev := range events {
		if ev.Progress.SamplesDone < samples || ev.Progress.Epoch < epoch {
			t.Fatalf("event %d regressed: %+v after samples=%d epoch=%d", i, ev.Progress, samples, epoch)
		}
		samples, epoch = ev.Progress.SamplesDone, ev.Progress.Epoch
	}
	if epoch != 5 {
		t.Fatalf("final epoch %d, want 5", epoch)
	}

	snap, ok := p.Trace(job.ID)
	if !ok {
		t.Fatal("Trace: unknown job")
	}
	if snap.Name != "train-job" || snap.Running {
		t.Fatalf("root span: %+v", snap)
	}
	if snap.Attrs["status"] != string(StatusDone) {
		t.Fatalf("root status attr: %v", snap.Attrs)
	}
	var order []string
	for _, c := range snap.Children {
		if c.Running {
			t.Fatalf("child span %q still running in a done job", c.Name)
		}
		if c.StartMS < 0 || c.DurationMS < 0 {
			t.Fatalf("child span %q has negative timing: %+v", c.Name, c)
		}
		order = append(order, c.Name)
	}
	want := []string{PhaseGenerate, "resolve-warm", PhaseTrain, PhasePublish}
	if len(order) != len(want) {
		t.Fatalf("phase spans %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("phase spans %v, want %v", order, want)
		}
	}
}

func TestInlineEinsumAndValidation(t *testing.T) {
	p := testPipeline(t, 1, 4)
	req := tinyRequest()
	req.Algo = ""
	req.Einsum = "O[a,b] += A[a,c] * B[c,b]"
	job, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, p, job.ID, 2*time.Minute)
	if done.Status != StatusDone {
		t.Fatalf("inline einsum job: %s (%s)", done.Status, done.Error)
	}

	bad := []Request{
		{},                                  // neither algo nor einsum
		{Algo: "conv1d", Einsum: "x"},       // both
		{Algo: "transformer"},               // unknown algo
		{Algo: "conv1d", Config: "jumbo"},   // unknown config
		{Algo: "conv1d", CostModel: "abra"}, // unknown backend
		{Algo: "conv1d", Samples: -1},       // negative override
	}
	for i, r := range bad {
		if _, err := p.Submit(r); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
	if _, err := p.Submit(Request{Algo: "conv1d", Warm: "nope", Samples: 60, Problems: 2, Epochs: 1, HiddenSizes: []int{8}}); err != nil {
		t.Fatal(err) // unknown warm parents fail at run time, not submit
	}
}

func TestWarmStartAutoSetsLineage(t *testing.T) {
	p := testPipeline(t, 1, 4)
	cold, err := p.Submit(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	coldDone := waitStatus(t, p, cold.ID, 2*time.Minute)
	if coldDone.Status != StatusDone {
		t.Fatalf("cold: %s (%s)", coldDone.Status, coldDone.Error)
	}

	warmReq := tinyRequest()
	warmReq.Seed = 11
	warmReq.Warm = "auto"
	warm, err := p.Submit(warmReq)
	if err != nil {
		t.Fatal(err)
	}
	warmDone := waitStatus(t, p, warm.ID, 2*time.Minute)
	if warmDone.Status != StatusDone {
		t.Fatalf("warm: %s (%s)", warmDone.Status, warmDone.Error)
	}
	if warmDone.Artifact.Parent != coldDone.Artifact.ID {
		t.Fatalf("warm lineage: parent %q, want %q", warmDone.Artifact.Parent, coldDone.Artifact.ID)
	}
	if warmDone.Artifact.Version != 2 {
		t.Fatalf("warm version %d, want 2", warmDone.Artifact.Version)
	}
	if warmDone.Progress.Parent != coldDone.Artifact.ID {
		t.Fatalf("progress parent: %+v", warmDone.Progress)
	}

	// Auto with an incompatible topology falls back to a cold start.
	fallback := tinyRequest()
	fallback.Seed = 13
	fallback.Warm = "auto"
	fallback.HiddenSizes = []int{24}
	fb, err := p.Submit(fallback)
	if err != nil {
		t.Fatal(err)
	}
	fbDone := waitStatus(t, p, fb.ID, 2*time.Minute)
	if fbDone.Status != StatusDone {
		t.Fatalf("fallback: %s (%s)", fbDone.Status, fbDone.Error)
	}
	if fbDone.Artifact.Parent != "" {
		t.Fatalf("incompatible auto parent not dropped: %+v", fbDone.Artifact)
	}

	// An explicitly named incompatible parent is an error, not a fallback.
	strict := fallback
	strict.Seed = 17
	strict.Warm = coldDone.Artifact.ID
	sj, err := p.Submit(strict)
	if err != nil {
		t.Fatal(err)
	}
	sjDone := waitStatus(t, p, sj.ID, 2*time.Minute)
	if sjDone.Status != StatusFailed {
		t.Fatalf("incompatible explicit parent: %s", sjDone.Status)
	}
}

// TestCancelMidEpochAndResume is the checkpoint/resume acceptance test: a
// training job cancelled between epochs stays resumable, and the resumed
// job skips dataset generation, continues from the checkpointed epoch, and
// publishes a full-history artifact.
func TestCancelMidEpochAndResume(t *testing.T) {
	p := testPipeline(t, 1, 4)
	req := tinyRequest()
	req.Samples = 1500
	req.Epochs = 60
	req.HiddenSizes = []int{32, 32}
	job, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Let it get through generation and at least two epochs.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		snap, ok := p.Get(job.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if snap.Progress.Epoch >= 2 {
			break
		}
		if snap.Status.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %s (%s)", snap.Status, snap.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached epoch 2: %+v", snap.Progress)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := p.Cancel(job.ID); !ok {
		t.Fatal("cancel: unknown job")
	}
	cancelled := waitStatus(t, p, job.ID, 30*time.Second)
	if cancelled.Status != StatusCancelled {
		t.Fatalf("status %s after cancel", cancelled.Status)
	}
	if !cancelled.Resumable {
		t.Fatal("cancelled mid-training but not resumable")
	}
	ckEpoch := cancelled.Progress.Epoch
	if ckEpoch < 2 || ckEpoch >= 60 {
		t.Fatalf("checkpoint epoch %d", ckEpoch)
	}

	// Resume twice (a client retry): each successor must run from its own
	// copy of the checkpoint, not clobber the other's state.
	resumed, err := p.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedFrom != job.ID {
		t.Fatalf("resumed-from %q", resumed.ResumedFrom)
	}
	resumed2, err := p.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, p, resumed.ID, 5*time.Minute)
	if done.Status != StatusDone {
		t.Fatalf("resumed job: %s (%s)", done.Status, done.Error)
	}
	if done.Artifact == nil || len(done.Artifact.TrainLoss) != 60 {
		t.Fatalf("resumed artifact history: %+v", done.Artifact)
	}
	done2 := waitStatus(t, p, resumed2.ID, 5*time.Minute)
	if done2.Status != StatusDone || len(done2.Artifact.TrainLoss) != 60 {
		t.Fatalf("second resume: %s (%s), history %d", done2.Status, done2.Error, len(done2.Artifact.TrainLoss))
	}
	if done2.Artifact.ID != done.Artifact.ID {
		t.Fatalf("identical resumes published different artifacts: %s vs %s", done.Artifact.ID, done2.Artifact.ID)
	}
	// The resumed job must not have regenerated the dataset: its progress
	// starts in the train phase with samples already complete.
	if done.Progress.SamplesDone != 1500 {
		t.Fatalf("resumed progress: %+v", done.Progress)
	}

	// Terminal-done jobs do not resume.
	if _, err := p.Resume(resumed.ID); err == nil {
		t.Fatal("resumed a done job")
	}
	if _, err := p.Resume("missing"); err == nil {
		t.Fatal("resumed an unknown job")
	}
}

func TestEnsureDeduplicatesActiveJobs(t *testing.T) {
	p := testPipeline(t, 1, 4)
	req := tinyRequest()
	req.Samples = 4000
	req.Epochs = 200
	first, err := p.Ensure(req)
	if err != nil {
		t.Fatal(err)
	}
	// An equivalent request — even with a different label — joins the
	// active job instead of training twice.
	dup := req
	dup.Name = "different-label"
	second, err := p.Ensure(dup)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Fatalf("ensure enqueued a duplicate: %s vs %s", second.ID, first.ID)
	}
	// A genuinely different request does not join.
	other := req
	other.Seed = 99
	third, err := p.Ensure(other)
	if err != nil {
		t.Fatal(err)
	}
	if third.ID == first.ID {
		t.Fatal("distinct requests joined")
	}
	p.Cancel(first.ID)
	p.Cancel(third.ID)
	waitStatus(t, p, first.ID, 30*time.Second)
	waitStatus(t, p, third.ID, 30*time.Second)
	// Once the first job is terminal, Ensure starts a fresh run.
	fresh, err := p.Ensure(req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == first.ID {
		t.Fatal("ensure returned a terminal job")
	}
	p.Cancel(fresh.ID)
}

func TestShutdownCancelsTrainingJobs(t *testing.T) {
	st, err := modelstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := New(st, 1, 4)
	req := tinyRequest()
	req.Samples = 4000
	req.Epochs = 500
	job, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	snap, ok := p.Get(job.ID)
	if !ok || snap.Status != StatusCancelled {
		t.Fatalf("after shutdown: %+v", snap)
	}
	if _, err := p.Submit(tinyRequest()); err == nil {
		t.Fatal("submit accepted after shutdown")
	}
}
