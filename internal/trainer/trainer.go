// Package trainer is the online Phase-1 pipeline: a bounded worker pool —
// deliberately separate from the search JobManager's, so training load
// never starves interactive searches and vice versa — whose jobs run
// dataset generation (surrogate.GenerateWith against any registered
// cost-model backend), supervised training (surrogate.TrainWith with
// cancellation, per-epoch checkpoints, and optional warm-start transfer
// from a parent artifact of the same workload), and publication into the
// versioned modelstore. Jobs report phase/sample/epoch/loss progress live,
// cancel between mini-batches, and — because every epoch checkpoints —
// resume from where they stopped instead of starting over.
package trainer

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/costmodel"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/modelstore"
	"mindmappings/internal/obs"
	"mindmappings/internal/resilience"
	"mindmappings/internal/stats"
	"mindmappings/internal/surrogate"
	"mindmappings/internal/workload"

	_ "mindmappings/internal/timeloop" // register the reference cost-model backend
)

// Status is the lifecycle state of a training job.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Phase names the stage a running job is in.
const (
	PhaseGenerate = "generate"
	PhaseTrain    = "train"
	PhasePublish  = "publish"
)

// Request is a training job description (the body of POST /v1/train).
type Request struct {
	// Algo names a registered workload; Einsum instead supplies an inline
	// index-expression spec. Exactly one of the two is required.
	Algo   string `json:"algo,omitempty"`
	Einsum string `json:"einsum,omitempty"`
	// Config picks the Phase-1 recipe baseline: tiny (default — the
	// service favors fast turnaround), small, or paper.
	Config string `json:"config,omitempty"`
	// Recipe overrides (0 / empty keeps the named config's value).
	Samples     int    `json:"samples,omitempty"`
	Epochs      int    `json:"epochs,omitempty"`
	Problems    int    `json:"problems,omitempty"`
	HiddenSizes []int  `json:"hidden_sizes,omitempty"`
	CostModel   string `json:"cost_model,omitempty"`
	// Seed drives dataset sampling and weight initialization; 0 keeps the
	// named config's default seed (seed 0 itself is not selectable — runs
	// that need it can use any other seed, the value is opaque).
	Seed int64 `json:"seed,omitempty"`
	// Name labels the published artifact (optional, descriptive only).
	Name string `json:"name,omitempty"`
	// Warm selects the warm-start parent: "" or "none" for a cold start,
	// "auto" to inherit from the store's best artifact of the same
	// workload when one is compatible (falling back to cold when not), or
	// an explicit artifact ID (which must be compatible).
	Warm string `json:"warm,omitempty"`
}

// NamedConfig resolves a Phase-1 configuration name ("" = tiny).
func NamedConfig(name string) (surrogate.Config, error) {
	switch name {
	case "", "tiny":
		return surrogate.TinyConfig(), nil
	case "small":
		return surrogate.SmallConfig(), nil
	case "paper":
		return surrogate.PaperConfig(), nil
	}
	return surrogate.Config{}, fmt.Errorf("trainer: unknown config %q (want tiny, small, or paper)", name)
}

// algorithm resolves the request's workload.
func (req *Request) algorithm() (*loopnest.Algorithm, error) {
	if (req.Algo == "") == (req.Einsum == "") {
		return nil, fmt.Errorf("trainer: exactly one of algo or einsum is required (registered workloads: %s)",
			strings.Join(workload.Names(), ", "))
	}
	if req.Einsum != "" {
		algo, err := workload.CompileInline(req.Einsum)
		if err != nil {
			return nil, fmt.Errorf("trainer: %w", err)
		}
		return algo, nil
	}
	algo, err := loopnest.AlgorithmByName(req.Algo)
	if err != nil {
		return nil, fmt.Errorf("trainer: %w", err)
	}
	return algo, nil
}

// config materializes the effective surrogate.Config.
func (req *Request) config() (surrogate.Config, error) {
	cfg, err := NamedConfig(req.Config)
	if err != nil {
		return cfg, err
	}
	if req.Samples > 0 {
		cfg.Samples = req.Samples
	}
	if req.Epochs > 0 {
		cfg.Train.Epochs = req.Epochs
	}
	if req.Problems > 0 {
		cfg.Problems = req.Problems
	}
	if len(req.HiddenSizes) > 0 {
		cfg.HiddenSizes = append([]int(nil), req.HiddenSizes...)
	}
	cfg.CostModel = req.CostModel
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	return cfg, nil
}

// Validate checks a request without running it.
func (req *Request) Validate() error {
	if _, err := req.algorithm(); err != nil {
		return err
	}
	if _, err := req.config(); err != nil {
		return err
	}
	if !costmodel.Registered(req.CostModel) {
		return fmt.Errorf("trainer: unknown cost model %q (registered: %s)",
			req.CostModel, strings.Join(costmodel.Names(), ", "))
	}
	if req.Samples < 0 || req.Epochs < 0 || req.Problems < 0 {
		return errors.New("trainer: negative recipe override")
	}
	if req.Samples > 0 && req.Samples < 10 {
		return fmt.Errorf("trainer: %d samples is too few (need >= 10)", req.Samples)
	}
	for _, h := range req.HiddenSizes {
		if h <= 0 {
			return fmt.Errorf("trainer: non-positive hidden width %d", h)
		}
	}
	return nil
}

// dedupKey canonicalizes the request fields that determine the artifact
// (everything but the label), so Ensure can join equivalent active jobs.
func (req *Request) dedupKey() string {
	c := *req
	c.Name = ""
	raw, _ := json.Marshal(&c)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16])
}

// Progress is the live view of a running job.
type Progress struct {
	Phase string `json:"phase,omitempty"`
	// Generation progress.
	Samples     int `json:"samples,omitempty"`
	SamplesDone int `json:"samples_done,omitempty"`
	// Training progress (Epoch = completed epochs).
	Epoch     int     `json:"epoch,omitempty"`
	Epochs    int     `json:"epochs,omitempty"`
	TrainLoss float64 `json:"train_loss,omitempty"`
	TestLoss  float64 `json:"test_loss,omitempty"`
	// Parent is the warm-start artifact actually used ("" = cold start).
	Parent string `json:"parent,omitempty"`
}

// Event is one live telemetry sample from a training job: the job's
// status plus its progress at the moment of publication. Events are
// published to Watch subscribers at every phase transition, generation
// progress update, and completed epoch; the final event carries the
// terminal status (and error, if any), after which the stream closes.
type Event struct {
	Status   Status   `json:"status"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
}

// eventRing bounds the per-job event history late Watch subscribers can
// replay: enough for every epoch of the paper config plus phase
// transitions, without pinning unbounded generation-progress spam.
const eventRing = 512

// Job is the pipeline-side record of one training request. Snapshots
// returned by the pipeline are copies; only the pipeline mutates the live
// record.
type Job struct {
	ID       string    `json:"id"`
	Status   Status    `json:"status"`
	Request  Request   `json:"request"`
	Error    string    `json:"error,omitempty"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Progress Progress  `json:"progress"`
	// Artifact is the published manifest once the job is done.
	Artifact *modelstore.Manifest `json:"artifact,omitempty"`
	// ResumedFrom is the job this one continued from, if any; Resumable
	// reports whether a checkpoint exists to continue this job from.
	ResumedFrom string `json:"resumed_from,omitempty"`
	Resumable   bool   `json:"resumable,omitempty"`

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// checkpoint holds the dataset and last completed-epoch training state
	// of an interrupted run; Resume hands it to the successor job.
	checkpoint *checkpoint
	// stream fans live Events out to Watch subscribers; trace is the job's
	// span tree (queued wait, generate/train/publish phases).
	stream *obs.Stream[Event]
	trace  *obs.Trace
}

type checkpoint struct {
	ds     *surrogate.RawDataset
	state  *surrogate.TrainState
	parent string // warm-start parent artifact ID carried into the resume
}

// Pipeline owns the training queue and worker pool, publishing finished
// surrogates into the store.
type Pipeline struct {
	store *modelstore.Store

	// publishRetry absorbs transient store.Publish failures (including
	// injected ones) so a blip at the very end of a long training run
	// does not discard it. Set before the first Submit to override.
	publishRetry resilience.RetryPolicy

	queue   chan *Job
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	active    map[string]string // dedup key -> queued/running job id
	resumable []*Job            // FIFO of terminal jobs still holding checkpoints
	workers   int
	retention int

	submitted uint64
	completed uint64
	failed    uint64
	cancelled uint64
}

// DefaultRetention bounds how many terminal training jobs stay queryable.
const DefaultRetention = 256

// maxResumable bounds how many terminal jobs keep their checkpoints: each
// one pins a full training dataset and a network snapshot in memory.
const maxResumable = 8

// New starts a pipeline of workers goroutines (2 when <= 0 — training jobs
// are long and CPU-bound, so the pool stays small by default) draining a
// queue of at most queueCap pending jobs (16 when <= 0). Call Shutdown to
// stop the pool.
func New(store *modelstore.Store, workers, queueCap int) *Pipeline {
	if workers <= 0 {
		workers = 2
	}
	if queueCap <= 0 {
		queueCap = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pipeline{
		store:        store,
		publishRetry: resilience.DefaultRetry,
		queue:        make(chan *Job, queueCap),
		baseCtx:      ctx,
		stop:         cancel,
		jobs:         make(map[string]*Job),
		active:       make(map[string]string),
		workers:      workers,
		retention:    DefaultRetention,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Store returns the artifact store the pipeline publishes into.
func (p *Pipeline) Store() *modelstore.Store { return p.store }

// Workers returns the worker-pool size.
func (p *Pipeline) Workers() int { return p.workers }

// ErrQueueFull is returned by Submit when the pending queue is at
// capacity; HTTP maps it to 503 so clients can back off and retry.
var ErrQueueFull = errors.New("trainer: training queue is full")

var errShuttingDown = errors.New("trainer: shutting down")

func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// Submit validates and enqueues a training job, returning a snapshot.
func (p *Pipeline) Submit(req Request) (Job, error) {
	return p.submit(req, nil, "")
}

// Ensure is Submit with deduplication: when an equivalent job (same
// request up to the label) is already queued or running, its snapshot is
// returned instead of enqueuing a duplicate — the train-on-miss path, so a
// burst of searches for one untrained workload triggers one training run.
// The dedup check and the enqueue happen under one lock hold, so
// concurrent Ensures of one request can never race past each other.
func (p *Pipeline) Ensure(req Request) (Job, error) {
	return p.submitWith(req, nil, "", true)
}

// Resume continues a cancelled or failed job from its last checkpoint as a
// new job (the original stays terminal). Jobs that never completed an
// epoch restart from the dataset when it was retained, or from scratch.
func (p *Pipeline) Resume(id string) (Job, error) {
	p.mu.Lock()
	prev, ok := p.jobs[id]
	if !ok {
		p.mu.Unlock()
		return Job{}, fmt.Errorf("trainer: unknown job %q", id)
	}
	if !prev.Status.Terminal() || prev.Status == StatusDone {
		status := prev.Status
		p.mu.Unlock()
		return Job{}, fmt.Errorf("trainer: job %q is %s, only cancelled or failed jobs resume", id, status)
	}
	var ck *checkpoint
	if prev.checkpoint != nil {
		// Copy the checkpoint record: the dataset and train state are
		// immutable once produced, but the struct's fields are overwritten
		// per epoch, so two resumed successors must not share one record.
		c := *prev.checkpoint
		ck = &c
	}
	req := prev.Request
	p.mu.Unlock()
	return p.submit(req, ck, id)
}

func (p *Pipeline) submit(req Request, ck *checkpoint, resumedFrom string) (Job, error) {
	return p.submitWith(req, ck, resumedFrom, false)
}

func (p *Pipeline) submitWith(req Request, ck *checkpoint, resumedFrom string, dedup bool) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	jctx, cancel := context.WithCancel(p.baseCtx)
	id := newJobID()
	job := &Job{
		ID:          id,
		Status:      StatusQueued,
		Request:     req,
		Created:     time.Now(),
		ResumedFrom: resumedFrom,
		ctx:         jctx,
		cancel:      cancel,
		done:        make(chan struct{}),
		checkpoint:  ck,
		stream:      obs.NewStream[Event](eventRing),
		trace:       obs.NewTrace(id, "train-job"),
	}
	p.mu.Lock()
	if p.baseCtx.Err() != nil {
		p.mu.Unlock()
		cancel()
		return Job{}, errShuttingDown
	}
	if dedup {
		if id, ok := p.active[req.dedupKey()]; ok {
			if existing, ok := p.jobs[id]; ok && !existing.Status.Terminal() {
				snap := copyJob(existing)
				p.mu.Unlock()
				cancel()
				return snap, nil
			}
		}
	}
	select {
	case p.queue <- job:
		p.jobs[job.ID] = job
		p.order = append(p.order, job.ID)
		p.active[req.dedupKey()] = job.ID
		p.submitted++
		snap := copyJob(job)
		p.mu.Unlock()
		return snap, nil
	default:
		p.mu.Unlock()
		cancel()
		return Job{}, ErrQueueFull
	}
}

// Get returns a snapshot of the job with the given id.
func (p *Pipeline) Get(id string) (Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	job, ok := p.jobs[id]
	if !ok {
		return Job{}, false
	}
	return copyJob(job), true
}

// List returns snapshots of all jobs in submission order.
func (p *Pipeline) List() []Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Job, 0, len(p.order))
	for _, id := range p.order {
		if job, ok := p.jobs[id]; ok {
			out = append(out, copyJob(job))
		}
	}
	return out
}

// Cancel stops a queued or running job; the checkpoint from the last
// completed epoch (if any) stays available for Resume.
func (p *Pipeline) Cancel(id string) (Job, bool) {
	p.mu.Lock()
	job, ok := p.jobs[id]
	if !ok {
		p.mu.Unlock()
		return Job{}, false
	}
	if job.Status == StatusQueued {
		p.finishLocked(job, StatusCancelled, nil, nil)
		snap := copyJob(job)
		p.mu.Unlock()
		return snap, true
	}
	cancel := job.cancel
	p.mu.Unlock()
	cancel()
	return p.Get(id)
}

// Wait blocks until the job reaches a terminal status or ctx expires.
func (p *Pipeline) Wait(ctx context.Context, id string) (Job, error) {
	p.mu.Lock()
	job, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return Job{}, fmt.Errorf("trainer: unknown job %q", id)
	}
	select {
	case <-job.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	snap, _ := p.Get(id)
	return snap, nil
}

func copyJob(j *Job) Job {
	c := *j
	c.cancel = nil
	c.done = nil
	c.checkpoint = nil
	c.Resumable = j.Status.Terminal() && j.Status != StatusDone && j.checkpoint != nil
	if j.Artifact != nil {
		a := *j.Artifact
		c.Artifact = &a
	}
	return c
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.baseCtx.Done():
			return
		case job := <-p.queue:
			p.runJob(job)
		}
	}
}

func (p *Pipeline) runJob(job *Job) {
	p.mu.Lock()
	ctx := job.ctx
	if job.Status.Terminal() {
		p.mu.Unlock()
		return
	}
	if ctx.Err() != nil {
		p.finishLocked(job, StatusCancelled, nil, nil)
		p.mu.Unlock()
		return
	}
	job.Status = StatusRunning
	job.Started = time.Now()
	job.trace.Root().Set("queue_wait_ms", float64(job.Started.Sub(job.Created).Microseconds())/1e3)
	ev := Event{Status: job.Status, Progress: job.Progress}
	p.mu.Unlock()
	job.stream.Publish(ev)

	manifest, err := p.execute(ctx, job)

	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case err != nil && ctx.Err() != nil:
		p.finishLocked(job, StatusCancelled, nil, nil)
	case err != nil:
		p.finishLocked(job, StatusFailed, nil, err)
	default:
		p.finishLocked(job, StatusDone, manifest, nil)
	}
}

func (p *Pipeline) finishLocked(job *Job, status Status, manifest *modelstore.Manifest, err error) {
	if job.Status.Terminal() {
		return
	}
	job.Status = status
	job.Finished = time.Now()
	job.Artifact = manifest
	if err != nil {
		job.Error = err.Error()
	}
	if status == StatusDone {
		job.checkpoint = nil // nothing left to resume
	} else if job.checkpoint != nil {
		// Bound resumable state: a checkpoint pins the job's whole dataset
		// plus a network snapshot, so only the most recent few
		// cancelled/failed jobs stay resumable; older ones drop their
		// checkpoints (the jobs remain queryable, just not resumable).
		p.resumable = append(p.resumable, job)
		for len(p.resumable) > maxResumable {
			p.resumable[0].checkpoint = nil
			p.resumable = p.resumable[1:]
		}
	}
	switch status {
	case StatusDone:
		p.completed++
	case StatusFailed:
		p.failed++
	case StatusCancelled:
		p.cancelled++
	}
	if p.active[job.Request.dedupKey()] == job.ID {
		delete(p.active, job.Request.dedupKey())
	}
	// Final event carries the terminal status, then the stream closes so
	// SSE watchers see end-of-stream rather than hanging. The stream's own
	// mutex is a leaf, so publishing under p.mu cannot deadlock.
	job.trace.Root().Set("status", string(status))
	job.trace.End()
	job.stream.Publish(Event{Status: job.Status, Progress: job.Progress, Error: job.Error})
	job.stream.Close()
	job.cancel()
	close(job.done)
	p.evictTerminalLocked()
}

// SetRetention overrides the terminal-job retention bound (minimum 1).
func (p *Pipeline) SetRetention(n int) {
	if n < 1 {
		n = 1
	}
	p.mu.Lock()
	p.retention = n
	p.evictTerminalLocked()
	p.mu.Unlock()
}

func (p *Pipeline) evictTerminalLocked() {
	terminal := 0
	for _, job := range p.jobs {
		if job.Status.Terminal() {
			terminal++
		}
	}
	if terminal <= p.retention {
		return
	}
	kept := p.order[:0]
	for _, id := range p.order {
		job, ok := p.jobs[id]
		if !ok {
			continue
		}
		if terminal > p.retention && job.Status.Terminal() {
			job.checkpoint = nil // release dataset/state even if still in the resumable FIFO
			delete(p.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	p.order = kept
}

// setProgress mutates a job's progress under the pipeline lock and
// publishes the updated view to Watch subscribers.
func (p *Pipeline) setProgress(job *Job, fn func(*Progress)) {
	p.mu.Lock()
	fn(&job.Progress)
	ev := Event{Status: job.Status, Progress: job.Progress}
	p.mu.Unlock()
	job.stream.Publish(ev)
}

// Watch subscribes to a job's live event stream: the history so far
// (oldest first), a channel of subsequent events, and a cancel function
// the caller must invoke when done. The channel closes when the job
// reaches a terminal status (or on cancel). Terminal jobs return their
// retained history and an already-closed channel.
func (p *Pipeline) Watch(id string) ([]Event, <-chan Event, func(), bool) {
	p.mu.Lock()
	job, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return nil, nil, nil, false
	}
	hist, ch, cancel := job.stream.Subscribe(16)
	return hist, ch, cancel, true
}

// Trace snapshots a job's span tree (queued wait, generate/train/publish
// phases); running spans report duration so far.
func (p *Pipeline) Trace(id string) (obs.SpanSnapshot, bool) {
	p.mu.Lock()
	job, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return obs.SpanSnapshot{}, false
	}
	return job.trace.Snapshot(), true
}

// execute runs one training job end to end: generate (or reuse the
// resumed dataset) → train (warm-started or from the checkpoint) →
// publish.
func (p *Pipeline) execute(ctx context.Context, job *Job) (*modelstore.Manifest, error) {
	req := &job.Request
	algo, err := req.algorithm()
	if err != nil {
		return nil, err
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	a := arch.Default(len(algo.Tensors) - 1)
	start := time.Now()
	root := job.trace.Root()

	// Phase 1a: the training set. A resumed job reuses the retained
	// dataset — regeneration would be wasted cost-model work.
	var ds *surrogate.RawDataset
	var resume *surrogate.TrainState
	parent := ""
	if ck := job.checkpoint; ck != nil && ck.ds != nil {
		ds = ck.ds
		resume = ck.state
		parent = ck.parent
		root.Set("resumed_dataset", true)
		p.setProgress(job, func(pr *Progress) {
			pr.Phase = PhaseTrain
			pr.Samples = ds.Len()
			pr.SamplesDone = ds.Len()
			pr.Parent = parent
		})
	} else {
		p.setProgress(job, func(pr *Progress) {
			pr.Phase = PhaseGenerate
			pr.Samples = cfg.Samples
		})
		genSpan := root.StartChild(PhaseGenerate)
		ds, err = surrogate.GenerateWith(algo, a, cfg, surrogate.GenerateOptions{
			Ctx: ctx,
			OnProgress: func(done, total int) {
				p.setProgress(job, func(pr *Progress) { pr.SamplesDone, pr.Samples = done, total })
			},
		})
		genSpan.End()
		if err != nil {
			return nil, err
		}
		genSpan.Set("samples", ds.Len())
		p.mu.Lock()
		job.checkpoint = &checkpoint{ds: ds}
		p.mu.Unlock()
	}

	// Phase 1b: the warm-start parent, resolved once the dataset exists
	// (compatibility depends on the encoded input width).
	var warm *surrogate.Surrogate
	if resume == nil {
		warmSpan := root.StartChild("resolve-warm")
		warm, parent, err = p.resolveWarm(req, algo, cfg, ds)
		warmSpan.Set("parent", parent)
		warmSpan.End()
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		job.checkpoint.parent = parent
		p.mu.Unlock()
	}

	// Phase 2: supervised training with per-epoch progress + checkpoints.
	p.setProgress(job, func(pr *Progress) {
		pr.Phase = PhaseTrain
		pr.Epochs = cfg.Train.Epochs
		pr.Parent = parent
	})
	trainSpan := root.StartChild(PhaseTrain)
	sur, hist, err := surrogate.TrainWith(ds, cfg, surrogate.TrainOptions{
		Ctx:    ctx,
		Warm:   warm,
		Resume: resume,
		OnEpoch: func(ep surrogate.TrainEpoch) {
			p.mu.Lock()
			job.Progress.Epoch = ep.Epoch + 1
			job.Progress.TrainLoss = ep.TrainLoss
			job.Progress.TestLoss = ep.TestLoss
			job.checkpoint.state = ep.State
			ev := Event{Status: job.Status, Progress: job.Progress}
			p.mu.Unlock()
			job.stream.Publish(ev)
		},
	})
	trainSpan.End()
	if err != nil {
		return nil, err
	}
	trainSpan.Set("epochs", len(hist.TrainLoss))

	// Phase 3: publish.
	p.setProgress(job, func(pr *Progress) { pr.Phase = PhasePublish })
	pubSpan := root.StartChild(PhasePublish)
	defer pubSpan.End()
	// Publish under bounded retry: the artifact embodies the whole
	// training run, so a transient storage fault (or an injected one)
	// here must not throw the run away.
	var manifest modelstore.Manifest
	err = p.publishRetry.Do(ctx, func() error {
		var perr error
		manifest, perr = p.store.Publish(sur, modelstore.PublishMeta{
			Name:         req.Name,
			CostModel:    effectiveBackend(req.CostModel),
			CostModelFP:  costModelFingerprint(req.CostModel, a, algo),
			Samples:      cfg.Samples,
			Problems:     cfg.Problems,
			Epochs:       len(hist.TrainLoss),
			HiddenSizes:  cfg.HiddenSizes,
			Seed:         cfg.Seed,
			Parent:       parent,
			TrainLoss:    hist.TrainLoss,
			TestLoss:     hist.TestLoss,
			TrainSeconds: time.Since(start).Seconds(),
		})
		return perr
	})
	if err != nil {
		return nil, err
	}
	pubSpan.Set("artifact", manifest.ID)
	return &manifest, nil
}

// resolveWarm picks the warm-start parent per req.Warm: none, an explicit
// artifact (incompatibility is an error), or auto (the store's best
// artifact for the workload when compatible, cold start otherwise).
func (p *Pipeline) resolveWarm(req *Request, algo *loopnest.Algorithm, cfg surrogate.Config, ds *surrogate.RawDataset) (*surrogate.Surrogate, string, error) {
	switch req.Warm {
	case "", "none":
		return nil, "", nil
	case "auto":
		// Only inherit from a parent trained against the same cost model:
		// the weights approximate that backend's f, and a run labeling with
		// a different backend should start cold rather than from a
		// systematically biased initialization.
		wantCM := effectiveBackend(req.CostModel)
		m, ok := p.store.ResolveMatching(algo.Fingerprint(), func(m modelstore.Manifest) bool {
			return m.CostModel == wantCM
		})
		if !ok {
			return nil, "", nil
		}
		sur, err := p.store.Load(m.ID)
		if err != nil {
			return nil, "", nil // unreadable parent: fall back to cold
		}
		if warmCompatible(sur, cfg, ds) != nil {
			return nil, "", nil
		}
		return sur, m.ID, nil
	default:
		m, ok := p.store.Get(req.Warm)
		if !ok {
			return nil, "", fmt.Errorf("trainer: warm-start parent %q is not in the store", req.Warm)
		}
		if m.CostModel != "" && m.CostModel != effectiveBackend(req.CostModel) {
			return nil, "", fmt.Errorf("trainer: warm-start parent %q was trained against cost model %q, this run labels with %q",
				req.Warm, m.CostModel, effectiveBackend(req.CostModel))
		}
		sur, err := p.store.Load(m.ID)
		if err != nil {
			return nil, "", err
		}
		if err := warmCompatible(sur, cfg, ds); err != nil {
			return nil, "", err
		}
		return sur, m.ID, nil
	}
}

// warmCompatible reports whether parent can seed a run of cfg over ds:
// same workload fingerprint, same output representation, and the exact
// network topology cfg implies (surrogate.TrainWith re-checks; this makes
// auto fall back to a cold start instead of failing).
func warmCompatible(parent *surrogate.Surrogate, cfg surrogate.Config, ds *surrogate.RawDataset) error {
	if parent.AlgoFP == "" || parent.AlgoFP != ds.Algo.Fingerprint() {
		return errors.New("trainer: warm-start parent is for a different workload")
	}
	if parent.Mode != cfg.Mode || parent.LogOutputs != cfg.LogOutputs {
		return errors.New("trainer: warm-start parent uses a different output representation")
	}
	sizes := parent.Net.Sizes
	if len(sizes) != len(cfg.HiddenSizes)+2 || sizes[0] != len(ds.X[0]) || sizes[len(sizes)-1] != len(ds.Y[0]) {
		return errors.New("trainer: warm-start parent topology does not fit")
	}
	for i, h := range cfg.HiddenSizes {
		if sizes[i+1] != h {
			return errors.New("trainer: warm-start parent topology does not fit")
		}
	}
	return nil
}

// effectiveBackend normalizes an empty cost-model name to the default.
func effectiveBackend(name string) string {
	if name == "" {
		return costmodel.DefaultBackend
	}
	return name
}

// costModelFingerprint stamps the labeling backend's behavioral identity:
// the evaluator fingerprint at a deterministic probe problem of the
// workload. Best effort — an empty string when the probe fails.
func costModelFingerprint(name string, a arch.Spec, algo *loopnest.Algorithm) string {
	prob := algo.RandomProblem(stats.NewRNG(0))
	ev, err := costmodel.New(name, a, prob)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(ev.AppendFingerprint(nil))
	return hex.EncodeToString(sum[:])
}

// Stats summarizes pipeline lifecycle counts for /v1/metrics.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Workers   int    `json:"workers"`
}

// Stats snapshots lifecycle counters and live queue state.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Submitted: p.submitted,
		Done:      p.completed,
		Failed:    p.failed,
		Cancelled: p.cancelled,
		Workers:   p.workers,
	}
	for _, job := range p.jobs {
		switch job.Status {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown cancels every job (queued and running) and waits for the
// worker pool to drain, or for ctx to expire. New submissions fail once
// shutdown has begun.
func (p *Pipeline) Shutdown(ctx context.Context) error {
	p.stop()
	drained := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, job := range p.jobs {
		if !job.Status.Terminal() {
			p.finishLocked(job, StatusCancelled, nil, nil)
		}
	}
	return nil
}
