package surrogate

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mindmappings/internal/arch"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
)

// savedSurrogate is the on-disk representation of a trained surrogate,
// bundling the network with its normalizers and metadata so Phase 2 can run
// from a file without regenerating anything.
type savedSurrogate struct {
	Magic      string
	Version    int
	AlgoName   string
	AlgoFP     string
	Arch       arch.Spec
	Mode       OutputMode
	LogOutputs bool
	NumTensors int
	InMean     []float64
	InStd      []float64
	OutMean    []float64
	OutStd     []float64
	NetBlob    []byte
}

const (
	surrogateMagic   = "mindmappings-surrogate"
	surrogateVersion = 1
)

// Save serializes the surrogate to w.
func (s *Surrogate) Save(w io.Writer) error {
	var netBuf bytes.Buffer
	if err := s.Net.Save(&netBuf); err != nil {
		return fmt.Errorf("surrogate: save: %w", err)
	}
	blob := savedSurrogate{
		Magic:      surrogateMagic,
		Version:    surrogateVersion,
		AlgoName:   s.AlgoName,
		AlgoFP:     s.AlgoFP,
		Arch:       s.Arch,
		Mode:       s.Mode,
		LogOutputs: s.LogOutputs,
		NumTensors: s.NumTensors,
		InMean:     s.InNorm.Mean,
		InStd:      s.InNorm.Std,
		OutMean:    s.OutNorm.Mean,
		OutStd:     s.OutNorm.Std,
		NetBlob:    netBuf.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(&blob); err != nil {
		return fmt.Errorf("surrogate: save: %w", err)
	}
	return nil
}

// Load deserializes a surrogate written by Save, validating the header and
// all shape relationships.
func Load(r io.Reader) (*Surrogate, error) {
	var blob savedSurrogate
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("surrogate: load: %w", err)
	}
	if blob.Magic != surrogateMagic {
		return nil, fmt.Errorf("surrogate: load: bad magic %q", blob.Magic)
	}
	if blob.Version != surrogateVersion {
		return nil, fmt.Errorf("surrogate: load: unsupported version %d", blob.Version)
	}
	net, err := nn.Load(bytes.NewReader(blob.NetBlob))
	if err != nil {
		return nil, fmt.Errorf("surrogate: load: %w", err)
	}
	if len(blob.InMean) != net.InDim() || len(blob.InStd) != net.InDim() {
		return nil, fmt.Errorf("surrogate: load: input normalizer dim %d/%d vs net %d",
			len(blob.InMean), len(blob.InStd), net.InDim())
	}
	if len(blob.OutMean) != net.OutDim() || len(blob.OutStd) != net.OutDim() {
		return nil, fmt.Errorf("surrogate: load: output normalizer dim %d/%d vs net %d",
			len(blob.OutMean), len(blob.OutStd), net.OutDim())
	}
	if blob.Mode == OutputMetaStats {
		totalIdx, _, cyclesIdx := metaIndices(blob.NumTensors)
		if cyclesIdx >= net.OutDim() || totalIdx < 0 {
			return nil, fmt.Errorf("surrogate: load: %d tensors inconsistent with %d outputs",
				blob.NumTensors, net.OutDim())
		}
	}
	return &Surrogate{
		AlgoName:   blob.AlgoName,
		AlgoFP:     blob.AlgoFP,
		Arch:       blob.Arch,
		Net:        net,
		InNorm:     &stats.Normalizer{Mean: blob.InMean, Std: blob.InStd},
		OutNorm:    &stats.Normalizer{Mean: blob.OutMean, Std: blob.OutStd},
		Mode:       blob.Mode,
		LogOutputs: blob.LogOutputs,
		NumTensors: blob.NumTensors,
	}, nil
}
