package surrogate

import (
	"context"
	"errors"
	"math"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// tinyTrainSetup builds a seconds-scale dataset + config pair.
func tinyTrainSetup(t *testing.T, epochs int) (*RawDataset, Config) {
	t.Helper()
	cfg := TinyConfig()
	cfg.HiddenSizes = []int{16}
	cfg.Samples = 300
	cfg.Problems = 3
	cfg.Train.Epochs = epochs
	ds, err := Generate(loopnest.MustAlgorithm("conv1d"), arch.Default(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg
}

// TestTrainWithCancelAndResume pins the checkpoint contract: a run
// cancelled mid-training resumes from its last completed epoch and ends
// with the full spliced loss history.
func TestTrainWithCancelAndResume(t *testing.T) {
	ds, cfg := tinyTrainSetup(t, 8)

	ctx, cancel := context.WithCancel(context.Background())
	var last *TrainState
	epochsSeen := 0
	_, hist, err := TrainWith(ds, cfg, TrainOptions{
		Ctx: ctx,
		OnEpoch: func(ep TrainEpoch) {
			epochsSeen++
			last = ep.State
			if ep.Epoch == 2 { // cancel after three completed epochs
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if epochsSeen != 3 || last == nil || last.Epoch != 3 {
		t.Fatalf("saw %d epochs, checkpoint %+v", epochsSeen, last)
	}
	if len(hist.TrainLoss) != 3 {
		t.Fatalf("partial history has %d epochs", len(hist.TrainLoss))
	}
	if len(last.Hist.TrainLoss) != 3 {
		t.Fatalf("checkpoint history has %d epochs", len(last.Hist.TrainLoss))
	}

	sur, full, err := TrainWith(ds, cfg, TrainOptions{Resume: last})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.TrainLoss) != 8 {
		t.Fatalf("resumed history has %d epochs, want 8", len(full.TrainLoss))
	}
	for i := 0; i < 3; i++ {
		if full.TrainLoss[i] != hist.TrainLoss[i] {
			t.Fatalf("epoch %d loss rewritten: %v vs %v", i, full.TrainLoss[i], hist.TrainLoss[i])
		}
	}
	if sur.AlgoName != "conv1d" || sur.InNorm != last.InNorm {
		t.Fatal("resumed surrogate lost its identity or whitening")
	}
	if _, err := sur.PredictEDP(ds.X[0]); err != nil {
		t.Fatal(err)
	}
}

// TestTrainWithWarmStart checks warm-start semantics: the parent's
// whitening transforms are inherited (so the cloned weights keep meaning),
// the parent itself is not mutated, and incompatible parents are refused.
func TestTrainWithWarmStart(t *testing.T) {
	ds, cfg := tinyTrainSetup(t, 4)
	parent, _, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parentW := parent.Net.Layers[0].W.Data[0]

	warmCfg := cfg
	warmCfg.Seed = 42
	child, hist, err := TrainWith(ds, warmCfg, TrainOptions{Warm: parent})
	if err != nil {
		t.Fatal(err)
	}
	if child.InNorm != parent.InNorm || child.OutNorm != parent.OutNorm {
		t.Fatal("warm start refit the whitening instead of inheriting it")
	}
	if parent.Net.Layers[0].W.Data[0] != parentW {
		t.Fatal("warm start mutated the parent's weights")
	}
	if child.Net == parent.Net {
		t.Fatal("child shares the parent's network")
	}
	if len(hist.TrainLoss) != 4 {
		t.Fatalf("warm history: %d epochs", len(hist.TrainLoss))
	}

	// Refusals: wrong workload, wrong representation, wrong topology.
	other, otherCfg := func() (*RawDataset, Config) {
		c := TinyConfig()
		c.HiddenSizes = []int{16}
		c.Samples = 300
		c.Problems = 3
		c.Train.Epochs = 1
		d, err := Generate(loopnest.MustAlgorithm("gemm"), arch.Default(2), c)
		if err != nil {
			t.Fatal(err)
		}
		return d, c
	}()
	if _, _, err := TrainWith(other, otherCfg, TrainOptions{Warm: parent}); err == nil {
		t.Fatal("warm start accepted a parent of another workload")
	}
	badMode := cfg
	badMode.LogOutputs = !cfg.LogOutputs
	if _, _, err := TrainWith(ds, badMode, TrainOptions{Warm: parent}); err == nil {
		t.Fatal("warm start accepted a different output representation")
	}
	badTopo := cfg
	badTopo.HiddenSizes = []int{24}
	if _, _, err := TrainWith(ds, badTopo, TrainOptions{Warm: parent}); err == nil {
		t.Fatal("warm start accepted a mismatched topology")
	}
	if _, _, err := TrainWith(ds, cfg, TrainOptions{Warm: parent, Resume: &TrainState{}}); err == nil {
		t.Fatal("warm + resume accepted together")
	}
}

// TestGenerateWithCancellationAndProgress checks the generation hooks.
func TestGenerateWithCancellationAndProgress(t *testing.T) {
	cfg := TinyConfig()
	cfg.Samples = 2000
	cfg.Problems = 3
	algo := loopnest.MustAlgorithm("conv1d")

	var reports int
	ctx, cancel := context.WithCancel(context.Background())
	_, err := GenerateWith(algo, arch.Default(2), cfg, GenerateOptions{
		Ctx: ctx,
		OnProgress: func(done, total int) {
			reports++
			if total != 2000 {
				t.Errorf("total %d", total)
			}
			cancel() // stop at the first report
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reports != 1 {
		t.Fatalf("%d progress reports after cancel", reports)
	}

	// Uncancelled: progress strictly increases to completion.
	lastDone := -1
	ds, err := GenerateWith(algo, arch.Default(2), cfg, GenerateOptions{
		OnProgress: func(done, total int) {
			if done <= lastDone {
				t.Errorf("progress went backwards: %d after %d", done, lastDone)
			}
			lastDone = done
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2000 {
		t.Fatalf("%d samples", ds.Len())
	}
}

// TestEpochStatsTestLossNaNWithoutTestSet documents the OnEpoch contract
// at the surrogate layer: the test split always exists here, so TestLoss
// is finite.
func TestEpochStatsTestLoss(t *testing.T) {
	ds, cfg := tinyTrainSetup(t, 2)
	_, _, err := TrainWith(ds, cfg, TrainOptions{
		OnEpoch: func(ep TrainEpoch) {
			if math.IsNaN(ep.TestLoss) {
				t.Error("TestLoss NaN despite a test split")
			}
			if ep.Epochs != 2 {
				t.Errorf("Epochs = %d", ep.Epochs)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
