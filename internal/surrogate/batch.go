package surrogate

import (
	"errors"
	"fmt"

	"mindmappings/internal/mat"
	"mindmappings/internal/nn"
)

// Batched inference: PredictBatch and GradientBatch amortize the
// per-query overhead of the scalar path (workspace pooling, input
// whitening copies, output copies) and evaluate the MLP with batch GEMM
// kernels that stream each weight matrix through the cache once per row
// block instead of once per query. Results are bit-identical to the
// scalar PredictScalar / GradientScalar calls — the batched kernels
// accumulate in the same order — so searchers can switch freely between
// the two paths (and the search layer's determinism tests prove it).

// maxBatchRows bounds the internal chunk size so arbitrarily large
// candidate sets don't balloon the batch scratch buffers; chunking does
// not change results.
const maxBatchRows = 32

// batchScratch bundles the per-call scratch of one batched query: a
// network workspace (whose batch buffers grow to the chunk size) plus the
// whitened-input and output-gradient staging matrices and the per-row
// z-space output captures.
type batchScratch struct {
	ws   *nn.Workspace
	x    *mat.Dense
	dOut *mat.Dense
	eZ   []float64 // captured z-space outputs, energy/total (or direct) index
	cZ   []float64 // captured z-space outputs, cycles index
}

// getBatchScratch takes batch scratch from the pool, growing its staging
// matrices to hold rows chunk rows.
func (s *Surrogate) getBatchScratch(rows int) *batchScratch {
	bs, ok := s.batchPool.Get().(*batchScratch)
	if !ok {
		bs = &batchScratch{ws: s.Net.NewWorkspace()}
	}
	if bs.x == nil || bs.x.Rows < rows {
		bs.x = mat.NewDense(rows, s.Net.InDim())
		bs.dOut = mat.NewDense(rows, s.Net.OutDim())
		bs.eZ = make([]float64, rows)
		bs.cZ = make([]float64, rows)
	}
	return bs
}

func (s *Surrogate) putBatchScratch(bs *batchScratch) { s.batchPool.Put(bs) }

// checkBatchArgs validates a batched query against the surrogate's mode
// and input width and returns a value buffer of the right length (dst
// reused when it has the capacity).
func (s *Surrogate) checkBatchArgs(vecs [][]float64, eExp, dExp float64, dst []float64) ([]float64, error) {
	if !(eExp == 1 && dExp == 1) && s.Mode != OutputMetaStats {
		return nil, errors.New("surrogate: non-EDP objectives need the meta-statistics representation")
	}
	in := s.Net.InDim()
	for i, v := range vecs {
		if len(v) != in {
			return nil, fmt.Errorf("surrogate: batch input %d has length %d, want %d", i, len(v), in)
		}
	}
	if cap(dst) >= len(vecs) {
		return dst[:len(vecs)], nil
	}
	return make([]float64, len(vecs)), nil
}

// whitenChunk stages vecs[lo:hi] into bs.x, z-scoring each coordinate
// exactly as the scalar path's InNorm.Applied does.
func (s *Surrogate) whitenChunk(bs *batchScratch, vecs [][]float64, lo, hi int) mat.Dense {
	in := s.Net.InDim()
	x := mat.Dense{Rows: hi - lo, Cols: in, Data: bs.x.Data[:(hi-lo)*in]}
	norm := s.InNorm
	for r := lo; r < hi; r++ {
		row := x.Data[(r-lo)*in : (r-lo+1)*in]
		for j, v := range vecs[r] {
			row[j] = (v - norm.Mean[j]) / norm.Std[j]
		}
	}
	return x
}

// PredictBatch predicts the designer objective energy^eExp x delay^dExp
// for a batch of raw encoded mapping vectors in one set of GEMM passes.
// (1,1) is EDP and works in both output modes; other exponent pairs need
// the meta-statistics representation. The result for vecs[i] is
// bit-identical to PredictScalar(vecs[i], eExp, dExp). dst is reused for
// the return value when it has sufficient capacity; pass nil to allocate.
// Safe for concurrent use.
func (s *Surrogate) PredictBatch(vecs [][]float64, eExp, dExp float64, dst []float64) ([]float64, error) {
	vals, err := s.checkBatchArgs(vecs, eExp, dExp, dst)
	if err != nil {
		return nil, err
	}
	if len(vecs) == 0 {
		return vals, nil
	}
	chunk := len(vecs)
	if chunk > maxBatchRows {
		chunk = maxBatchRows
	}
	bs := s.getBatchScratch(chunk)
	defer s.putBatchScratch(bs)
	totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
	for lo := 0; lo < len(vecs); lo += chunk {
		hi := lo + chunk
		if hi > len(vecs) {
			hi = len(vecs)
		}
		x := s.whitenChunk(bs, vecs, lo, hi)
		out := s.Net.ForwardBatch(bs.ws, &x)
		for r := 0; r < out.Rows; r++ {
			var eZ, cZ float64
			if s.Mode == OutputDirectEDP {
				eZ = out.At(r, 0)
			} else {
				eZ, cZ = out.At(r, totalIdx), out.At(r, cyclesIdx)
			}
			vals[lo+r] = s.valueFromZ(eZ, cZ, eExp, dExp)
		}
	}
	return vals, nil
}

// GradientBatch computes, for each raw encoded mapping vector, the
// predicted objective energy^eExp x delay^dExp and its gradient with
// respect to the raw vector — the batched ∇f* that drives multi-chain
// gradient search. Results are bit-identical to GradientScalar per row.
// vals and grads are reused when correctly sized (grads[i] must have
// length InDim or be nil); pass nil to allocate. Safe for concurrent use.
func (s *Surrogate) GradientBatch(vecs [][]float64, eExp, dExp float64, vals []float64, grads [][]float64) ([]float64, [][]float64, error) {
	vals, err := s.checkBatchArgs(vecs, eExp, dExp, vals)
	if err != nil {
		return nil, nil, err
	}
	in := s.Net.InDim()
	if cap(grads) >= len(vecs) {
		grads = grads[:len(vecs)]
	} else {
		grads = make([][]float64, len(vecs))
	}
	for i := range grads {
		if len(grads[i]) != in {
			grads[i] = make([]float64, in)
		}
	}
	if len(vecs) == 0 {
		return vals, grads, nil
	}
	chunk := len(vecs)
	if chunk > maxBatchRows {
		chunk = maxBatchRows
	}
	bs := s.getBatchScratch(chunk)
	defer s.putBatchScratch(bs)
	for lo := 0; lo < len(vecs); lo += chunk {
		hi := lo + chunk
		if hi > len(vecs) {
			hi = len(vecs)
		}
		if err := s.gradientChunk(bs, vecs, lo, hi, eExp, dExp, vals, grads); err != nil {
			return nil, nil, err
		}
	}
	return vals, grads, nil
}

// gradientChunk runs one forward+backward chunk of GradientBatch.
func (s *Surrogate) gradientChunk(bs *batchScratch, vecs [][]float64, lo, hi int, eExp, dExp float64, vals []float64, grads [][]float64) error {
	b := hi - lo
	x := s.whitenChunk(bs, vecs, lo, hi)
	out := s.Net.ForwardBatch(bs.ws, &x)

	// Capture the z-space outputs the value and output-gradient formulas
	// need before the backward pass overwrites the forward buffers.
	var totalIdx, cyclesIdx int
	if s.Mode == OutputMetaStats {
		totalIdx, _, cyclesIdx = metaIndices(s.NumTensors)
	}
	for r := 0; r < b; r++ {
		if s.Mode == OutputDirectEDP {
			bs.eZ[r] = out.At(r, 0)
		} else {
			bs.eZ[r] = out.At(r, totalIdx)
			bs.cZ[r] = out.At(r, cyclesIdx)
		}
	}

	// Build dOut row by row through the shared per-row formulas
	// (rowValueAndDOut — the same code GradientScalar runs).
	outDim := s.Net.OutDim()
	dOut := mat.Dense{Rows: b, Cols: outDim, Data: bs.dOut.Data[:b*outDim]}
	for i := range dOut.Data {
		dOut.Data[i] = 0
	}
	for r := 0; r < b; r++ {
		vals[lo+r] = s.rowValueAndDOut(bs.eZ[r], bs.cZ[r], eExp, dExp, dOut.Data[r*outDim:(r+1)*outDim])
	}

	// The forward pass above is still resident in the workspace, so
	// backpropagate directly instead of re-running it (the scalar path
	// pays that second forward; here it is free to skip and does not
	// change the result).
	gradWhite := s.Net.BackwardInputBatch(bs.ws, &dOut)
	inDim := s.Net.InDim()
	for r := 0; r < b; r++ {
		gw := gradWhite.Data[r*inDim : (r+1)*inDim]
		g := grads[lo+r]
		for j, v := range gw {
			g[j] = v / s.InNorm.Std[j]
		}
	}
	return nil
}
