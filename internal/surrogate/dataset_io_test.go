package surrogate

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ds.Len() {
		t.Fatalf("lengths %d vs %d", loaded.Len(), ds.Len())
	}
	if loaded.Algo.Name != "cnn-layer" {
		t.Fatalf("algorithm %q", loaded.Algo.Name)
	}
	if loaded.Mode != ds.Mode {
		t.Fatal("mode lost")
	}
	for i := 0; i < 20; i++ {
		for j := range ds.X[i] {
			if loaded.X[i][j] != ds.X[i][j] {
				t.Fatal("inputs corrupted")
			}
		}
		for j := range ds.Y[i] {
			if loaded.Y[i][j] != ds.Y[i][j] {
				t.Fatal("targets corrupted")
			}
		}
	}
	// A loaded dataset must be trainable.
	cfg := TinyConfig()
	cfg.Samples = loaded.Len()
	cfg.Train.Epochs = 1
	if _, _, err := Train(loaded, cfg); err != nil {
		t.Fatalf("loaded dataset not trainable: %v", err)
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := LoadDataset(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func encodeDS(t *testing.T, blob savedDataset) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestLoadDatasetValidation(t *testing.T) {
	good := savedDataset{
		Magic: datasetMagic, Version: datasetVersion, AlgoName: "conv1d",
		X: [][]float64{{1, 2}}, Y: [][]float64{{1}},
	}
	cases := map[string]func(d *savedDataset){
		"bad magic":    func(d *savedDataset) { d.Magic = "nope" },
		"bad version":  func(d *savedDataset) { d.Version = 99 },
		"bad algo":     func(d *savedDataset) { d.AlgoName = "no-such-workload" },
		"empty":        func(d *savedDataset) { d.X, d.Y = nil, nil },
		"len mismatch": func(d *savedDataset) { d.Y = append(d.Y, []float64{2}) },
		"ragged X":     func(d *savedDataset) { d.X = [][]float64{{1, 2}, {1}}; d.Y = [][]float64{{1}, {1}} },
	}
	for name, corrupt := range cases {
		blob := good
		blob.X = append([][]float64(nil), good.X...)
		blob.Y = append([][]float64(nil), good.Y...)
		corrupt(&blob)
		if _, err := LoadDataset(encodeDS(t, blob)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadDataset(encodeDS(t, good)); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestSaveDatasetRequiresAlgo(t *testing.T) {
	ds := &RawDataset{X: [][]float64{{1}}, Y: [][]float64{{1}}}
	if err := ds.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("dataset without algorithm accepted")
	}
}

func TestGenerateTailBiasCoversLowCosts(t *testing.T) {
	// Tail-enriched sampling must shift the EDP distribution of the
	// dataset toward the low-cost region relative to pure uniform.
	base := TinyConfig()
	base.Samples = 1500
	base.Problems = 4
	uniform := base
	uniform.TailBias = 0
	biased := base
	biased.TailBias = 0.7

	meanEDP := func(cfg Config) float64 {
		ds, err := Generate(fixtureAlgoConv1D(), fixtureArch2(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, y := range ds.Y {
			total += trueEDPFromTarget(y, ds.Mode, len(fixtureAlgoConv1D().Tensors))
		}
		return total / float64(ds.Len())
	}
	u := meanEDP(uniform)
	b := meanEDP(biased)
	if b >= u {
		t.Fatalf("tail-biased mean EDP %v not below uniform %v", b, u)
	}
}
