package surrogate

// Fingerprint-contract tests: datasets and surrogates are stamped with the
// workload identity they were generated/trained for, and loading refuses a
// workload whose definition has drifted — even when the name matches.

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/workload"
)

// decodeDSBlob decodes a gob-serialized dataset blob for tampering.
func decodeDSBlob(data []byte, blob *savedDataset) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(blob)
}

func tinyGenConfig() Config {
	cfg := TinyConfig()
	cfg.Samples = 120
	cfg.Problems = 3
	cfg.Train.Epochs = 2
	return cfg
}

func TestDatasetRoundTripCarriesFingerprint(t *testing.T) {
	algo := loopnest.MustAlgorithm("conv1d")
	ds, err := Generate(algo, arch.Default(2), tinyGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Algo.Fingerprint() != algo.Fingerprint() {
		t.Fatal("round-tripped dataset resolves a different workload")
	}
}

func TestDatasetRefusesDriftedWorkload(t *testing.T) {
	algo := loopnest.MustAlgorithm("conv1d")
	ds, err := Generate(algo, arch.Default(2), tinyGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a tampered fingerprint, simulating a registry whose
	// conv1d definition changed after the dataset was written.
	var blob savedDataset
	if err := decodeDSBlob(buf.Bytes(), &blob); err != nil {
		t.Fatal(err)
	}
	blob.AlgoFP = strings.Repeat("00", 32)
	if _, err := LoadDataset(encodeDS(t, blob)); err == nil {
		t.Fatal("accepted a dataset whose workload fingerprint mismatches")
	} else if !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestDatasetRecompilesUnregisteredSpec(t *testing.T) {
	// An inline/runtime workload: registered in the writing process only.
	algo, err := workload.Compile(workload.Spec{
		Name:        "test-io-ttm",
		Expr:        "O[i,j,k] += A[i,l] * B[l,j,k]",
		SampleSpace: map[string][]int{"i": {8, 16}, "j": {8, 16}, "k": {8, 16}, "l": {8, 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Generate(algo, arch.Default(2), tinyGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The workload is NOT in the loading binary's registry; Save found no
	// spec to stamp either, so the load must fail with a useful error.
	if _, err := LoadDataset(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("accepted a dataset for an unregistered spec-less workload")
	}
	// Stamp the spec the way a RegisterSpec'd workload would carry it:
	// then loading recompiles the workload from the file alone.
	var blob savedDataset
	if err := decodeDSBlob(buf.Bytes(), &blob); err != nil {
		t.Fatal(err)
	}
	blob.Spec = workload.Spec{
		Expr:        "O[i,j,k] += A[i,l] * B[l,j,k]",
		SampleSpace: map[string][]int{"i": {8, 16}, "j": {8, 16}, "k": {8, 16}, "l": {8, 16}},
	}
	loaded, err := LoadDataset(encodeDS(t, blob))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Algo.Fingerprint() != algo.Fingerprint() {
		t.Fatal("recompiled workload differs from the original")
	}
}

func TestSurrogateLoadCarriesFingerprint(t *testing.T) {
	algo := loopnest.MustAlgorithm("conv1d")
	ds, err := Generate(algo, arch.Default(2), tinyGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	sur, _, err := Train(ds, tinyGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sur.AlgoFP != algo.Fingerprint() {
		t.Fatal("trained surrogate not stamped with the workload fingerprint")
	}
	var buf bytes.Buffer
	if err := sur.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AlgoFP != sur.AlgoFP {
		t.Fatal("fingerprint lost in serialization")
	}
}
