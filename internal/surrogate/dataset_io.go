package surrogate

import (
	"encoding/gob"
	"fmt"
	"io"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/workload"
)

// savedDataset is the on-disk representation of a generated training set,
// so the expensive cost-model sampling pass (cmd/datagen) can be decoupled
// from training runs.
//
// AlgoFP stamps the workload identity (loopnest.Algorithm.Fingerprint) the
// samples were generated for; loading verifies it against the resolved
// algorithm so a dataset never silently trains a surrogate for a workload
// whose registered definition has changed. Spec carries the einsum spec of
// registry-known workloads (and of runtime-registered ones), letting a
// dataset for a workload absent from the loading binary's registry be
// recompiled from the file alone.
type savedDataset struct {
	Magic    string
	Version  int
	AlgoName string
	AlgoFP   string
	Spec     workload.Spec
	Arch     arch.Spec
	Mode     OutputMode
	X        [][]float64
	Y        [][]float64
}

const (
	datasetMagic   = "mindmappings-dataset"
	datasetVersion = 2
)

// Save serializes the raw dataset to w.
func (d *RawDataset) Save(w io.Writer) error {
	if d.Algo == nil {
		return fmt.Errorf("surrogate: dataset has no algorithm")
	}
	blob := savedDataset{
		Magic:    datasetMagic,
		Version:  datasetVersion,
		AlgoName: d.Algo.Name,
		AlgoFP:   d.Algo.Fingerprint(),
		Arch:     d.Arch,
		Mode:     d.Mode,
		X:        d.X,
		Y:        d.Y,
	}
	if spec, ok := workload.Lookup(d.Algo.Name); ok {
		blob.Spec = spec
	}
	if err := gob.NewEncoder(w).Encode(&blob); err != nil {
		return fmt.Errorf("surrogate: dataset save: %w", err)
	}
	return nil
}

// LoadDataset deserializes a dataset written by Save: the algorithm is
// resolved from the workload registry (or recompiled from the stored spec
// when the name is not registered), the stamped fingerprint is verified,
// and row shapes are validated.
func LoadDataset(r io.Reader) (*RawDataset, error) {
	var blob savedDataset
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("surrogate: dataset load: %w", err)
	}
	if blob.Magic != datasetMagic {
		return nil, fmt.Errorf("surrogate: dataset load: bad magic %q", blob.Magic)
	}
	if blob.Version < 1 || blob.Version > datasetVersion {
		return nil, fmt.Errorf("surrogate: dataset load: unsupported version %d", blob.Version)
	}
	algo, err := resolveAlgorithm(blob.AlgoName, blob.AlgoFP, blob.Spec)
	if err != nil {
		return nil, fmt.Errorf("surrogate: dataset load: %w", err)
	}
	if len(blob.X) != len(blob.Y) || len(blob.X) == 0 {
		return nil, fmt.Errorf("surrogate: dataset load: %d inputs vs %d targets", len(blob.X), len(blob.Y))
	}
	wantX := len(blob.X[0])
	wantY := len(blob.Y[0])
	for i := range blob.X {
		if len(blob.X[i]) != wantX || len(blob.Y[i]) != wantY {
			return nil, fmt.Errorf("surrogate: dataset load: ragged row %d", i)
		}
	}
	return &RawDataset{Algo: algo, Arch: blob.Arch, X: blob.X, Y: blob.Y, Mode: blob.Mode}, nil
}

// resolveAlgorithm maps a stored (name, fingerprint, spec) triple back to a
// live algorithm: registry first, stored einsum spec as the fallback, with
// the fingerprint contract enforced whenever the file carries one.
func resolveAlgorithm(name, fp string, spec workload.Spec) (*loopnest.Algorithm, error) {
	var algo *loopnest.Algorithm
	if loopnest.AlgorithmRegistered(name) {
		a, err := loopnest.AlgorithmByName(name)
		if err != nil {
			return nil, err
		}
		algo = a
	} else if spec.Expr != "" {
		spec.Name = name
		a, err := workload.Compile(spec)
		if err != nil {
			return nil, fmt.Errorf("recompiling stored spec for %q: %w", name, err)
		}
		algo = a
	} else {
		_, err := loopnest.AlgorithmByName(name)
		return nil, fmt.Errorf("%w (and the file carries no einsum spec to recompile)", err)
	}
	if fp != "" && algo.Fingerprint() != fp {
		return nil, fmt.Errorf("workload %q fingerprint mismatch: file has %.12s…, resolved algorithm is %.12s… (the workload definition changed since this file was written)",
			name, fp, algo.Fingerprint())
	}
	return algo, nil
}
