package surrogate

import (
	"encoding/gob"
	"fmt"
	"io"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// savedDataset is the on-disk representation of a generated training set,
// so the expensive cost-model sampling pass (cmd/datagen) can be decoupled
// from training runs.
type savedDataset struct {
	Magic    string
	Version  int
	AlgoName string
	Arch     arch.Spec
	Mode     OutputMode
	X        [][]float64
	Y        [][]float64
}

const (
	datasetMagic   = "mindmappings-dataset"
	datasetVersion = 1
)

// Save serializes the raw dataset to w.
func (d *RawDataset) Save(w io.Writer) error {
	if d.Algo == nil {
		return fmt.Errorf("surrogate: dataset has no algorithm")
	}
	blob := savedDataset{
		Magic:    datasetMagic,
		Version:  datasetVersion,
		AlgoName: d.Algo.Name,
		Arch:     d.Arch,
		Mode:     d.Mode,
		X:        d.X,
		Y:        d.Y,
	}
	if err := gob.NewEncoder(w).Encode(&blob); err != nil {
		return fmt.Errorf("surrogate: dataset save: %w", err)
	}
	return nil
}

// LoadDataset deserializes a dataset written by Save, resolving the
// algorithm by name and validating row shapes.
func LoadDataset(r io.Reader) (*RawDataset, error) {
	var blob savedDataset
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("surrogate: dataset load: %w", err)
	}
	if blob.Magic != datasetMagic {
		return nil, fmt.Errorf("surrogate: dataset load: bad magic %q", blob.Magic)
	}
	if blob.Version != datasetVersion {
		return nil, fmt.Errorf("surrogate: dataset load: unsupported version %d", blob.Version)
	}
	algo, err := loopnest.AlgorithmByName(blob.AlgoName)
	if err != nil {
		return nil, fmt.Errorf("surrogate: dataset load: %w", err)
	}
	if len(blob.X) != len(blob.Y) || len(blob.X) == 0 {
		return nil, fmt.Errorf("surrogate: dataset load: %d inputs vs %d targets", len(blob.X), len(blob.Y))
	}
	wantX := len(blob.X[0])
	wantY := len(blob.Y[0])
	for i := range blob.X {
		if len(blob.X[i]) != wantX || len(blob.Y[i]) != wantY {
			return nil, fmt.Errorf("surrogate: dataset load: ragged row %d", i)
		}
	}
	return &RawDataset{Algo: algo, Arch: blob.Arch, X: blob.X, Y: blob.Y, Mode: blob.Mode}, nil
}
