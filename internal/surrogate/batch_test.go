package surrogate

import (
	"math"
	"sync"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/mat"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
)

// batchEq compares a batched result against its scalar twin under the
// build's determinism contract: the default build must match bit for bit;
// the opt-in simd build reassociates GEMM reductions and is held to a
// tight relative tolerance instead.
func batchEq(a, b float64) bool {
	if a == b {
		return true
	}
	if !mat.SIMDEnabled {
		return false
	}
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= 1e-9*scale
}

var (
	batchOnce sync.Once
	batchSur  *Surrogate
	batchVecs [][]float64
	batchErr  error
)

// batchFixture trains one tiny conv1d surrogate and samples encoded
// mapping vectors, shared across the batch tests.
func batchFixture(t testing.TB) (*Surrogate, [][]float64) {
	t.Helper()
	batchOnce.Do(func() {
		cfg := TinyConfig()
		cfg.HiddenSizes = []int{32, 32}
		cfg.Samples = 1500
		cfg.Problems = 4
		cfg.Train.Epochs = 8
		ds, err := Generate(loopnest.MustAlgorithm("conv1d"), arch.Default(2), cfg)
		if err != nil {
			batchErr = err
			return
		}
		batchSur, _, batchErr = Train(ds, cfg)
		if batchErr != nil {
			return
		}
		p, err := loopnest.NewConv1DProblem("batch-test", 1024, 5)
		if err != nil {
			batchErr = err
			return
		}
		space, err := mapspace.New(arch.Default(2), p)
		if err != nil {
			batchErr = err
			return
		}
		rng := stats.NewRNG(17)
		for i := 0; i < 37; i++ {
			m := space.Random(rng)
			batchVecs = append(batchVecs, space.Encode(&m))
		}
	})
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	return batchSur, batchVecs
}

// TestPredictBatchBitIdenticalToScalar is the acceptance-criterion guard:
// the batched prediction path must agree with the scalar path bit for
// bit, across objectives and batch sizes spanning chunk boundaries.
func TestPredictBatchBitIdenticalToScalar(t *testing.T) {
	sur, vecs := batchFixture(t)
	objectives := [][2]float64{{1, 1}, {1, 2}, {1, 0}, {0, 1}}
	for _, exp := range objectives {
		for _, n := range []int{1, 2, 5, len(vecs)} {
			vals, err := sur.PredictBatch(vecs[:n], exp[0], exp[1], nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want, err := sur.PredictScalar(vecs[i], exp[0], exp[1])
				if err != nil {
					t.Fatal(err)
				}
				if !batchEq(vals[i], want) {
					t.Fatalf("exp=%v n=%d: PredictBatch[%d]=%v, PredictScalar=%v",
						exp, n, i, vals[i], want)
				}
			}
		}
	}
}

// TestGradientBatchBitIdenticalToScalar pins the batched gradient path
// against GradientScalar, values and every gradient coordinate.
func TestGradientBatchBitIdenticalToScalar(t *testing.T) {
	sur, vecs := batchFixture(t)
	for _, exp := range [][2]float64{{1, 1}, {1, 2}} {
		vals, grads, err := sur.GradientBatch(vecs, exp[0], exp[1], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, vec := range vecs {
			wantV, wantG, err := sur.GradientScalar(vec, exp[0], exp[1])
			if err != nil {
				t.Fatal(err)
			}
			if !batchEq(vals[i], wantV) {
				t.Fatalf("exp=%v: value[%d] batch=%v scalar=%v", exp, i, vals[i], wantV)
			}
			for j := range wantG {
				if !batchEq(grads[i][j], wantG[j]) {
					t.Fatalf("exp=%v: grad[%d][%d] batch=%v scalar=%v",
						exp, i, j, grads[i][j], wantG[j])
				}
			}
		}
	}
}

// TestBatchReusesDestinations checks the allocation-avoidance contract:
// correctly-sized dst buffers are reused, not replaced.
func TestBatchReusesDestinations(t *testing.T) {
	sur, vecs := batchFixture(t)
	vals := make([]float64, len(vecs))
	got, err := sur.PredictBatch(vecs, 1, 1, vals)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &vals[0] {
		t.Fatal("PredictBatch did not reuse the provided dst")
	}
	grads := make([][]float64, len(vecs))
	for i := range grads {
		grads[i] = make([]float64, sur.Net.InDim())
	}
	keep := grads[0]
	_, gotG, err := sur.GradientBatch(vecs, 1, 1, vals, grads)
	if err != nil {
		t.Fatal(err)
	}
	if &gotG[0][0] != &keep[0] {
		t.Fatal("GradientBatch did not reuse the provided grads rows")
	}
}

// TestBatchValidation pins error cases: wrong input width, non-EDP
// objective on a direct-EDP surrogate, empty batches.
func TestBatchValidation(t *testing.T) {
	sur, vecs := batchFixture(t)
	if _, err := sur.PredictBatch([][]float64{{1, 2}}, 1, 1, nil); err == nil {
		t.Fatal("expected width error")
	}
	if _, _, err := sur.GradientBatch([][]float64{{1, 2}}, 1, 1, nil, nil); err == nil {
		t.Fatal("expected width error")
	}
	if vals, err := sur.PredictBatch(nil, 1, 1, nil); err != nil || len(vals) != 0 {
		t.Fatalf("empty batch: vals=%v err=%v", vals, err)
	}
	direct := &Surrogate{
		AlgoName:   sur.AlgoName,
		Net:        sur.Net,
		InNorm:     sur.InNorm,
		OutNorm:    sur.OutNorm,
		Mode:       OutputDirectEDP,
		NumTensors: sur.NumTensors,
	}
	if _, err := direct.PredictBatch(vecs[:1], 1, 2, nil); err == nil {
		t.Fatal("expected mode error for non-EDP objective on direct surrogate")
	}
}

// TestBatchConcurrentUse exercises the batch scratch pool under -race:
// many goroutines issuing batched and scalar queries concurrently must
// agree with a serial reference.
func TestBatchConcurrentUse(t *testing.T) {
	sur, vecs := batchFixture(t)
	ref, err := sur.PredictBatch(vecs, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				if g%2 == 0 {
					vals, err := sur.PredictBatch(vecs, 1, 1, nil)
					if err != nil {
						errs <- err
						return
					}
					for i := range vals {
						if vals[i] != ref[i] {
							t.Errorf("goroutine %d: vals[%d]=%v, want %v", g, i, vals[i], ref[i])
							return
						}
					}
				} else {
					if _, _, err := sur.GradientBatch(vecs, 1, 1, nil, nil); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// newSyntheticSurrogate builds an untrained surrogate with the given
// topology and identity normalizers — weights are random but the compute
// shape matches a trained model, which is all throughput benchmarks need.
func newSyntheticSurrogate(tb testing.TB, inDim int, hidden []int, numTensors int) *Surrogate {
	tb.Helper()
	outDim := int(arch.NumLevels)*numTensors + 3
	sizes := append(append([]int{inDim}, hidden...), outDim)
	net, err := nn.NewMLP(sizes, nn.ReLU{}, stats.NewRNG(5))
	if err != nil {
		tb.Fatal(err)
	}
	ident := func(d int) *stats.Normalizer {
		n := &stats.Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
		for i := range n.Std {
			n.Std[i] = 1
		}
		return n
	}
	return &Surrogate{
		AlgoName:   "synthetic",
		Net:        net,
		InNorm:     ident(inDim),
		OutNorm:    ident(outDim),
		Mode:       OutputMetaStats,
		LogOutputs: true,
		NumTensors: numTensors,
	}
}
