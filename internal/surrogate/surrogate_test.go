package surrogate

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/costmodel"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/nn"
	"mindmappings/internal/oracle"
	"mindmappings/internal/stats"
)

// Shared fixtures: dataset generation and training are the expensive parts
// of this package, so tests share one trained CNN surrogate.
var (
	fixtureOnce sync.Once
	fixtureDS   *RawDataset
	fixtureSur  *Surrogate
	fixtureHist *nn.History
	fixtureErr  error
)

func cnnFixture(t *testing.T) (*RawDataset, *Surrogate, *nn.History) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := TinyConfig()
		ds, err := Generate(loopnest.MustAlgorithm("cnn-layer"), arch.Default(2), cfg)
		if err != nil {
			fixtureErr = err
			return
		}
		sur, hist, err := Train(ds, cfg)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureDS, fixtureSur, fixtureHist = ds, sur, hist
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureDS, fixtureSur, fixtureHist
}

func TestConfigValidate(t *testing.T) {
	bad := TinyConfig()
	bad.HiddenSizes = nil
	if err := bad.validate(); err == nil {
		t.Fatal("accepted empty hidden sizes")
	}
	bad = TinyConfig()
	bad.Samples = 1
	if err := bad.validate(); err == nil {
		t.Fatal("accepted 1 sample")
	}
	bad = TinyConfig()
	bad.Problems = 0
	if err := bad.validate(); err == nil {
		t.Fatal("accepted 0 problems")
	}
	bad = TinyConfig()
	bad.TestFrac = 1.5
	if err := bad.validate(); err == nil {
		t.Fatal("accepted bad test fraction")
	}
}

func TestPaperConfigMatchesPaper(t *testing.T) {
	cfg := PaperConfig()
	wantHidden := []int{64, 256, 1024, 2048, 2048, 1024, 256, 64}
	if len(cfg.HiddenSizes) != len(wantHidden) {
		t.Fatalf("hidden sizes %v", cfg.HiddenSizes)
	}
	for i := range wantHidden {
		if cfg.HiddenSizes[i] != wantHidden[i] {
			t.Fatalf("hidden sizes %v, want %v (paper §5.5)", cfg.HiddenSizes, wantHidden)
		}
	}
	if cfg.Samples != 10_000_000 {
		t.Fatalf("samples = %d, want 10M", cfg.Samples)
	}
	if cfg.Train.Loss.Name() != "huber" {
		t.Fatal("paper loss must be huber")
	}
}

func TestGenerateShapes(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	cfg := TinyConfig()
	if ds.Len() != cfg.Samples {
		t.Fatalf("dataset size %d, want %d", ds.Len(), cfg.Samples)
	}
	// CNN encoding width 62, meta-stats width 12 (§5.5).
	if len(ds.X[0]) != 62 {
		t.Fatalf("input width %d, want 62", len(ds.X[0]))
	}
	if len(ds.Y[0]) != 12 {
		t.Fatalf("target width %d, want 12", len(ds.Y[0]))
	}
}

func TestGenerateTargetsNormalized(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	nt := 3
	totalIdx, utilIdx, cyclesIdx := metaIndices(nt)
	for i := 0; i < 100; i++ {
		y := ds.Y[i]
		if y[totalIdx] < 0.9 {
			t.Fatalf("normalized total energy %v < 0.9 (below lower bound)", y[totalIdx])
		}
		if y[cyclesIdx] < 0.99 {
			t.Fatalf("normalized cycles %v < 1", y[cyclesIdx])
		}
		if y[utilIdx] <= 0 || y[utilIdx] > 1 {
			t.Fatalf("utilization %v out of (0,1]", y[utilIdx])
		}
	}
}

func TestGenerateSpansMultipleProblems(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	pids := map[string]bool{}
	for _, x := range ds.X {
		key := ""
		for _, v := range x[:7] {
			key += string(rune(int('a') + int(v)))
		}
		pids[key] = true
	}
	if len(pids) < 4 {
		t.Fatalf("dataset covers only %d problems", len(pids))
	}
}

func TestSubset(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	sub, err := ds.Subset(100)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 100 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if _, err := ds.Subset(0); err == nil {
		t.Fatal("accepted subset 0")
	}
	if _, err := ds.Subset(ds.Len() + 1); err == nil {
		t.Fatal("accepted oversized subset")
	}
}

func TestTrainingConverges(t *testing.T) {
	_, _, hist := cnnFixture(t)
	if len(hist.TrainLoss) == 0 || len(hist.TestLoss) == 0 {
		t.Fatal("missing loss history")
	}
	if hist.FinalTrain() >= hist.TrainLoss[0] {
		t.Fatalf("train loss did not decrease: %v -> %v", hist.TrainLoss[0], hist.FinalTrain())
	}
	// Test loss should track training loss (no gross overfit), mirroring
	// Figure 7a's "test loss closely follows the train loss".
	if hist.FinalTest() > 3*hist.FinalTrain()+0.1 {
		t.Fatalf("test loss %v diverged from train loss %v", hist.FinalTest(), hist.FinalTrain())
	}
}

func TestSurrogatePredictsUsefully(t *testing.T) {
	ds, sur, _ := cnnFixture(t)
	_, corr, err := sur.EvaluateQuality(ds, 500)
	if err != nil {
		t.Fatal(err)
	}
	// The tiny surrogate must still rank mappings: log-EDP correlation
	// well above chance.
	if corr < 0.5 {
		t.Fatalf("log-EDP correlation %v < 0.5; surrogate not learning", corr)
	}
}

func TestPredictEDPInputValidation(t *testing.T) {
	_, sur, _ := cnnFixture(t)
	if _, err := sur.PredictEDP(make([]float64, 3)); err != nil {
	} else {
		t.Fatal("accepted wrong-length input")
	}
	if _, _, err := sur.GradientEDP(make([]float64, 3)); err == nil {
		t.Fatal("GradientEDP accepted wrong-length input")
	}
	if _, err := sur.PredictMetaStats(make([]float64, 3)); err == nil {
		t.Fatal("PredictMetaStats accepted wrong-length input")
	}
}

func TestPredictMetaStats(t *testing.T) {
	ds, sur, _ := cnnFixture(t)
	meta, err := sur.PredictMetaStats(ds.X[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) != 12 {
		t.Fatalf("meta length %d", len(meta))
	}
}

// The surrogate gradient must match finite differences of PredictEDP — the
// correctness condition for the entire Phase-2 machinery.
func TestGradientEDPMatchesFiniteDifference(t *testing.T) {
	ds, sur, _ := cnnFixture(t)
	const h = 1e-5
	for trial := 0; trial < 5; trial++ {
		x := append([]float64(nil), ds.X[trial*7]...)
		edp, grad, err := sur.GradientEDP(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(edp) {
			t.Fatal("NaN EDP prediction")
		}
		// Check a handful of coordinates.
		for _, i := range []int{0, 7, 15, 30, len(x) - 1} {
			orig := x[i]
			x[i] = orig + h
			fp, err := sur.PredictEDP(x)
			if err != nil {
				t.Fatal(err)
			}
			x[i] = orig - h
			fm, err := sur.PredictEDP(x)
			if err != nil {
				t.Fatal(err)
			}
			x[i] = orig
			fd := (fp - fm) / (2 * h)
			if math.Abs(fd-grad[i]) > 1e-3*(1+math.Abs(fd)) {
				t.Fatalf("trial %d grad[%d]: fd=%v analytic=%v", trial, i, fd, grad[i])
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, sur, _ := cnnFixture(t)
	var buf bytes.Buffer
	if err := sur.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.AlgoName != sur.AlgoName || loaded.NumTensors != sur.NumTensors {
		t.Fatal("metadata lost in round trip")
	}
	for i := 0; i < 10; i++ {
		a, err := sur.PredictEDP(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.PredictEDP(ds.X[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("prediction changed after round trip: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	_, sur, _ := cnnFixture(t)
	var buf bytes.Buffer
	if err := sur.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Load(bytes.NewReader(raw[:len(raw)/3])); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestDirectEDPMode(t *testing.T) {
	// Small end-to-end run of the §4.1.3 ablation's strawman: 1-output
	// surrogate on the cheap Conv1D algorithm.
	cfg := TinyConfig()
	cfg.Mode = OutputDirectEDP
	cfg.Samples = 800
	cfg.Train.Epochs = 6
	ds, err := Generate(loopnest.MustAlgorithm("conv1d"), arch.Default(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Y[0]) != 1 {
		t.Fatalf("direct mode target width %d, want 1", len(ds.Y[0]))
	}
	sur, _, err := Train(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sur.PredictEDP(ds.X[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sur.PredictMetaStats(ds.X[0]); err == nil {
		t.Fatal("meta stats must be unavailable in direct mode")
	}
	if _, _, err := sur.GradientEDP(ds.X[0]); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsModeMismatch(t *testing.T) {
	ds, _, _ := cnnFixture(t)
	cfg := TinyConfig()
	cfg.Mode = OutputDirectEDP
	if _, _, err := Train(ds, cfg); err == nil {
		t.Fatal("accepted meta-stats dataset for direct-EDP config")
	}
}

func TestNormalizeTargetEDPIdentity(t *testing.T) {
	// normalized totalEnergy x normalized cycles == normalized EDP must
	// hold exactly, since Phase 2 optimizes that product.
	prob, err := loopnest.NewCNNProblem("t", 4, 16, 8, 14, 14, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Default(2)
	model, err := costmodel.New("timeloop", a, prob)
	if err != nil {
		t.Fatal(err)
	}
	space, err := mapspace.New(a, prob)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := oracle.Compute(a, prob)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for i := 0; i < 20; i++ {
		m := space.Random(rng)
		cost, err := costmodel.Evaluate(nil, model, &m)
		if err != nil {
			t.Fatal(err)
		}
		y := normalizeTarget(&cost, bound, OutputMetaStats)
		totalIdx, _, cyclesIdx := metaIndices(3)
		product := y[totalIdx] * y[cyclesIdx]
		want := bound.NormalizeEDP(cost.EDP)
		if math.Abs(product-want) > 1e-9*want {
			t.Fatalf("normalized product %v != normalized EDP %v", product, want)
		}
	}
}

func TestPearson(t *testing.T) {
	if c := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	if c := pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := pearson([]float64{1, 1}, []float64{2, 3}); c != 0 {
		t.Fatalf("degenerate correlation = %v", c)
	}
	if c := pearson([]float64{1}, []float64{2}); c != 0 {
		t.Fatal("single sample correlation must be 0")
	}
}

func TestMetaIndices(t *testing.T) {
	total, util, cycles := metaIndices(3)
	if total != 9 || util != 10 || cycles != 11 {
		t.Fatalf("CNN meta indices = %d/%d/%d", total, util, cycles)
	}
	total, util, cycles = metaIndices(4)
	if total != 12 || util != 13 || cycles != 14 {
		t.Fatalf("MTTKRP meta indices = %d/%d/%d", total, util, cycles)
	}
}

// Fixture helpers shared with dataset_io_test.go.
func fixtureAlgoConv1D() *loopnest.Algorithm { return loopnest.MustAlgorithm("conv1d") }
func fixtureArch2() arch.Spec                { return arch.Default(2) }
