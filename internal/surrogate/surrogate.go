// Package surrogate implements Phase 1 of Mind Mappings (paper §4.1):
// building a training set by uniformly sampling mappings across the map
// spaces of representative problems, and fitting a differentiable MLP that
// approximates the accelerator cost function f with f*. The trained
// surrogate predicts the paper's rich meta-statistics output representation
// (§4.1.3) and — the crux of Phase 2 — yields gradients of predicted EDP
// with respect to the encoded mapping vector.
package surrogate

import (
	"context"
	"errors"
	"fmt"

	"mindmappings/internal/arch"
	"mindmappings/internal/costmodel"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/nn"
	"mindmappings/internal/oracle"
	"mindmappings/internal/stats"

	_ "mindmappings/internal/timeloop" // register the reference cost-model backend
)

// OutputMode selects the surrogate's output representation.
type OutputMode int

const (
	// OutputMetaStats predicts the full meta-statistics vector (per-level
	// per-tensor energies, total energy, utilization, cycles), the paper's
	// chosen representation (§4.1.3: it yielded a 32.8x lower EDP error
	// than predicting EDP directly).
	OutputMetaStats OutputMode = iota
	// OutputDirectEDP predicts a single normalized-EDP value, the strawman
	// the paper's §4.1.3 ablation compares against.
	OutputDirectEDP
)

// Config bundles Phase-1 hyper-parameters.
type Config struct {
	// HiddenSizes are the MLP hidden-layer widths.
	HiddenSizes []int
	// Samples is the number of (mapping, problem, cost) tuples to generate.
	Samples int
	// Problems is how many representative problems to sample map spaces
	// from (§4.1.1: "we generate training points by uniformly sampling
	// from multiple map spaces").
	Problems int
	// TestFrac is the held-out fraction for the Figure-7a test curve.
	TestFrac float64
	// Train carries the supervised-training recipe (§5.5 defaults).
	Train nn.TrainConfig
	// Mode selects the output representation.
	Mode OutputMode
	// LogOutputs applies log1p to cost targets before whitening. The
	// normalized costs span orders of magnitude; compressing them keeps
	// Huber training in its quadratic regime. (Implementation choice on
	// top of the paper's lower-bound normalization; see DESIGN.md §4.)
	LogOutputs bool
	// TailBias is the fraction of training samples drawn from the
	// low-cost tail of the map space instead of uniformly: a tail sample
	// is the best of TailK uniform draws plus TailNeighbors of its
	// perturbation neighbors. With the paper's 10M uniform samples the
	// tail is covered for free; at laptop-scale dataset sizes this
	// enrichment restores the surrogate's resolution near good mappings.
	// The paper explicitly leaves "improved sampling methods" as
	// anticipated future work (§4.1.1); 0 reproduces pure uniform
	// sampling. See DESIGN.md §4.
	TailBias      float64
	TailK         int // candidates per tail draw (default 8)
	TailNeighbors int // neighbor samples per tail draw (default 3)
	// CostModel names the costmodel backend that labels the training set
	// (empty = costmodel.DefaultBackend, the reference Timeloop-style
	// model). A surrogate is an approximation of one specific f; training
	// against a different registered backend needs no other change.
	CostModel string
	// Seed drives dataset sampling and weight initialization.
	Seed int64
}

// PaperConfig returns the paper's exact Phase-1 configuration (§5.5):
// 9-layer MLP [64,256,1024,2048,2048,1024,256,64] hidden widths, 10M
// samples, Huber loss, SGD momentum 0.9, LR 1e-2 decayed 0.1x every 25 of
// 100 epochs, batch 128. Training this on a laptop CPU takes a very long
// time; experiments default to SmallConfig.
func PaperConfig() Config {
	return Config{
		HiddenSizes: []int{64, 256, 1024, 2048, 2048, 1024, 256, 64},
		Samples:     10_000_000,
		Problems:    64,
		TestFrac:    0.05,
		Train:       nn.PaperTrainConfig(),
		Mode:        OutputMetaStats,
		LogOutputs:  true,
		Seed:        1,
	}
}

// SmallConfig returns a laptop-scale configuration that preserves the
// paper's training recipe shape while fitting single-core CPU budgets.
func SmallConfig() Config {
	cfg := Config{
		HiddenSizes: []int{64, 128, 128, 64},
		Samples:     20_000,
		Problems:    24,
		TestFrac:    0.1,
		Train:       nn.PaperTrainConfig(),
		Mode:        OutputMetaStats,
		LogOutputs:  true,
		TailBias:    0.5,
		Seed:        1,
	}
	cfg.Train.Epochs = 40
	cfg.Train.LRDecayEvery = 14
	return cfg
}

// TinyConfig returns a configuration small enough for unit tests and
// benchmark setup, still end-to-end faithful.
func TinyConfig() Config {
	cfg := Config{
		HiddenSizes: []int{64, 64},
		Samples:     8000,
		Problems:    12,
		TestFrac:    0.1,
		Train:       nn.PaperTrainConfig(),
		Mode:        OutputMetaStats,
		LogOutputs:  true,
		TailBias:    0.5,
		Seed:        1,
	}
	cfg.Train.Epochs = 24
	cfg.Train.LRDecayEvery = 8
	cfg.Train.LR = 2e-2
	return cfg
}

func (c *Config) validate() error {
	if len(c.HiddenSizes) == 0 {
		return errors.New("surrogate: no hidden layers configured")
	}
	if c.Samples < 10 {
		return fmt.Errorf("surrogate: %d samples is too few", c.Samples)
	}
	if c.Problems < 1 {
		return fmt.Errorf("surrogate: %d problems", c.Problems)
	}
	if c.TestFrac <= 0 || c.TestFrac >= 1 {
		return fmt.Errorf("surrogate: test fraction %v", c.TestFrac)
	}
	if !costmodel.Registered(c.CostModel) {
		return fmt.Errorf("surrogate: unknown cost model %q (registered: %v)", c.CostModel, costmodel.Names())
	}
	return nil
}

// RawDataset is a generated Phase-1 training set before whitening: encoded
// mapping vectors (with problem-id prefix) and lower-bound-normalized cost
// targets.
type RawDataset struct {
	Algo *loopnest.Algorithm
	Arch arch.Spec
	X    [][]float64
	Y    [][]float64
	Mode OutputMode
}

// Len returns the number of samples.
func (d *RawDataset) Len() int { return len(d.X) }

// Subset returns a dataset view containing the first n samples, used by the
// Figure-7c training-set-size sweep.
func (d *RawDataset) Subset(n int) (*RawDataset, error) {
	if n < 1 || n > d.Len() {
		return nil, fmt.Errorf("surrogate: subset %d of %d", n, d.Len())
	}
	return &RawDataset{Algo: d.Algo, Arch: d.Arch, X: d.X[:n], Y: d.Y[:n], Mode: d.Mode}, nil
}

// Generate builds a RawDataset for the algorithm on the accelerator per
// §4.1.1: sample cfg.Problems representative problems, then draw valid
// mappings uniformly from their map spaces, evaluating each with the
// reference cost model and tagging it with its problem id. Targets are
// normalized to the per-problem algorithmic lower bound (§4.1.3) so costs
// of differently-sized problems share a scale.
func Generate(algo *loopnest.Algorithm, a arch.Spec, cfg Config) (*RawDataset, error) {
	return GenerateWith(algo, a, cfg, GenerateOptions{})
}

// GenerateOptions extends Generate for online training pipelines.
type GenerateOptions struct {
	// Ctx cancels generation between samples; the partial dataset is
	// discarded and ctx.Err() returned. Nil means no cancellation.
	Ctx context.Context
	// OnProgress, when set, is called periodically (every few hundred
	// samples and once at completion) with the number of labeled samples
	// so far and the configured total.
	OnProgress func(done, total int)
}

// generateProgressStride is how many samples GenerateWith labels between
// cancellation checks and OnProgress callbacks.
const generateProgressStride = 128

// GenerateWith is Generate with cancellation and progress reporting.
func GenerateWith(algo *loopnest.Algorithm, a arch.Spec, cfg Config, opts GenerateOptions) (*RawDataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	rng := stats.NewRNG(cfg.Seed)
	type problemCtx struct {
		space *mapspace.Space
		model costmodel.Evaluator
		bound oracle.Bound
	}
	var ctxs []problemCtx
	seen := map[string]bool{}
	for len(ctxs) < cfg.Problems {
		p := algo.RandomProblem(rng)
		key := p.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		space, err := mapspace.New(a, p)
		if err != nil {
			return nil, fmt.Errorf("surrogate: map space for %s: %w", key, err)
		}
		model, err := costmodel.New(cfg.CostModel, a, p)
		if err != nil {
			return nil, fmt.Errorf("surrogate: cost model for %s: %w", key, err)
		}
		bound, err := oracle.Compute(a, p)
		if err != nil {
			return nil, fmt.Errorf("surrogate: oracle for %s: %w", key, err)
		}
		ctxs = append(ctxs, problemCtx{space, model, bound})
	}

	tailK := cfg.TailK
	if tailK <= 0 {
		tailK = 8
	}
	tailNeighbors := cfg.TailNeighbors
	if tailNeighbors < 0 {
		tailNeighbors = 3
	} else if tailNeighbors == 0 {
		tailNeighbors = 3
	}

	ds := &RawDataset{Algo: algo, Arch: a, Mode: cfg.Mode}
	add := func(pctx problemCtx, m *mapspace.Mapping) (costmodel.Cost, error) {
		cost, err := costmodel.Evaluate(nil, pctx.model, m)
		if err != nil {
			return costmodel.Cost{}, fmt.Errorf("surrogate: evaluating sample %d: %w", ds.Len(), err)
		}
		ds.X = append(ds.X, pctx.space.Encode(m))
		ds.Y = append(ds.Y, normalizeTarget(&cost, pctx.bound, cfg.Mode))
		return cost, nil
	}
	defer func() {
		if opts.OnProgress != nil && ds.Len() == cfg.Samples {
			opts.OnProgress(ds.Len(), cfg.Samples) // the documented completion report
		}
	}()
	lastReport := 0
	for ds.Len() < cfg.Samples {
		if ds.Len()-lastReport >= generateProgressStride {
			lastReport = ds.Len()
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if opts.OnProgress != nil {
				opts.OnProgress(ds.Len(), cfg.Samples)
			}
		}
		pctx := ctxs[rng.Intn(len(ctxs))]
		if cfg.TailBias <= 0 || rng.Float64() >= cfg.TailBias {
			// Uniform draw (§4.1.1).
			m := pctx.space.Random(rng)
			if _, err := add(pctx, &m); err != nil {
				return nil, err
			}
			continue
		}
		// Tail draw: best of tailK uniform candidates, plus a few of its
		// neighbors so the net learns the local structure around good
		// mappings.
		var best mapspace.Mapping
		bestEDP := -1.0
		for k := 0; k < tailK; k++ {
			m := pctx.space.Random(rng)
			cost, err := costmodel.Evaluate(nil, pctx.model, &m)
			if err != nil {
				return nil, fmt.Errorf("surrogate: tail candidate: %w", err)
			}
			if bestEDP < 0 || cost.EDP < bestEDP {
				best, bestEDP = m, cost.EDP
			}
		}
		if _, err := add(pctx, &best); err != nil {
			return nil, err
		}
		for n := 0; n < tailNeighbors && ds.Len() < cfg.Samples; n++ {
			nb := pctx.space.Perturb(rng, &best)
			if _, err := add(pctx, &nb); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// normalizeTarget converts a cost into the surrogate's target vector in
// lower-bound units: energies divided by the problem's minimum energy,
// cycles by minimum cycles, utilization kept as-is. In these units the
// product of the normalized total energy and normalized cycles is exactly
// the paper's normalized EDP.
func normalizeTarget(c *costmodel.Cost, bound oracle.Bound, mode OutputMode) []float64 {
	if mode == OutputDirectEDP {
		return []float64{bound.NormalizeEDP(c.EDP)}
	}
	meta := c.MetaStats()
	nt := len(c.EnergyPJ[0])
	for i := 0; i < int(arch.NumLevels)*nt; i++ {
		meta[i] /= bound.MinEnergyPJ
	}
	totalIdx, _, cyclesIdx := metaIndices(nt)
	meta[totalIdx] /= bound.MinEnergyPJ
	meta[cyclesIdx] /= bound.MinCycles
	return meta
}

// metaIndices returns the positions of total energy, utilization, and
// cycles within the meta-statistics vector for an algorithm with nt
// tensors.
func metaIndices(nt int) (totalIdx, utilIdx, cyclesIdx int) {
	base := int(arch.NumLevels) * nt
	return base, base + 1, base + 2
}
