package surrogate

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
)

// Surrogate is a trained differentiable approximation f* of the accelerator
// cost function for one (algorithm, accelerator) pair, reusable across all
// problems of the algorithm (§4.1: "the surrogate is trained once, offline
// per target algorithm").
//
// All prediction and gradient methods are safe for concurrent use: the
// network weights are frozen after training and per-call scratch buffers
// come from an internal pool, so one loaded surrogate can serve many search
// jobs at once.
type Surrogate struct {
	AlgoName string
	// AlgoFP is the workload fingerprint (loopnest.Algorithm.Fingerprint)
	// the surrogate was trained for; loaders refuse algorithms whose
	// fingerprint differs, so a surrogate never drives a search for a
	// workload other than its own. Empty on legacy files.
	AlgoFP     string
	Arch       arch.Spec
	Net        *nn.MLP
	InNorm     *stats.Normalizer
	OutNorm    *stats.Normalizer
	Mode       OutputMode
	LogOutputs bool
	NumTensors int

	wsPool    sync.Pool // of *nn.Workspace for s.Net
	batchPool sync.Pool // of *batchScratch for the batched entry points
}

// getWS takes a scratch workspace from the pool, allocating on first use.
func (s *Surrogate) getWS() *nn.Workspace {
	if ws, ok := s.wsPool.Get().(*nn.Workspace); ok {
		return ws
	}
	return s.Net.NewWorkspace()
}

// putWS returns a workspace to the pool. Callers must copy out any
// workspace-owned slices (Forward/InputGradient results) first.
func (s *Surrogate) putWS(ws *nn.Workspace) { s.wsPool.Put(ws) }

// Train fits a surrogate on the raw dataset per the configured recipe and
// returns it with the per-epoch loss history (the Figure-7a data).
func Train(ds *RawDataset, cfg Config) (*Surrogate, *nn.History, error) {
	return TrainWith(ds, cfg, TrainOptions{})
}

// TrainState is a resumable training checkpoint: the network as of the last
// completed epoch together with the whitening transforms and the loss
// history up to that point. Everything else a run needs (the split, the
// schedule, the data order) is re-derived deterministically from the
// dataset and config, so the checkpoint stays small.
type TrainState struct {
	Net     *nn.MLP
	InNorm  *stats.Normalizer
	OutNorm *stats.Normalizer
	Epoch   int // completed epochs
	Hist    nn.History
}

// TrainEpoch is the per-epoch progress report passed to
// TrainOptions.OnEpoch.
type TrainEpoch struct {
	Epoch     int // 0-based epoch just completed
	Epochs    int
	TrainLoss float64
	TestLoss  float64 // NaN when no test split exists
	// State is a checkpoint as of this epoch: the network is a deep copy,
	// so the receiver may retain it across further training.
	State *TrainState
}

// TrainOptions extends Train for online training pipelines: cancellation,
// per-epoch progress/checkpoint callbacks, warm-start transfer from a
// previously trained surrogate, and resumption of an interrupted run.
type TrainOptions struct {
	// Ctx cancels training between mini-batches; the error returned is
	// ctx.Err(). Nil means no cancellation.
	Ctx context.Context
	// OnEpoch, when set, is called after every completed epoch with the
	// losses and a checkpoint-ready snapshot of the run.
	OnEpoch func(TrainEpoch)
	// Warm initializes the run from a parent surrogate of the same
	// workload instead of from random weights: the parent's network is
	// cloned and — so the cloned weights keep meaning — the parent's
	// whitening transforms are reused rather than refit (see DESIGN.md §7).
	// The parent must match the dataset's workload fingerprint, the
	// config's mode/log-compression, and the network topology implied by
	// cfg.HiddenSizes.
	Warm *Surrogate
	// Resume continues an interrupted run from its checkpoint: epochs
	// before State.Epoch are skipped (with the schedule replayed), and the
	// returned history is the splice of the checkpoint's history and the
	// newly executed epochs. Mutually exclusive with Warm — the checkpoint
	// already carries the run's whitening and weights.
	Resume *TrainState
}

// TrainWith is Train with TrainOptions. On cancellation it returns the
// partial history and ctx's error; the caller can checkpoint via OnEpoch
// and continue later with Resume.
func TrainWith(ds *RawDataset, cfg Config, opts TrainOptions) (*Surrogate, *nn.History, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if ds.Len() < 10 {
		return nil, nil, fmt.Errorf("surrogate: dataset of %d samples is too small", ds.Len())
	}
	if ds.Mode != cfg.Mode {
		return nil, nil, fmt.Errorf("surrogate: dataset mode %d != config mode %d", ds.Mode, cfg.Mode)
	}
	if opts.Warm != nil && opts.Resume != nil {
		return nil, nil, errors.New("surrogate: warm-start and resume are mutually exclusive")
	}

	// Whitening (§4.1.2/§4.1.3): inputs and outputs each normalized to mean
	// 0, std 1 over the training set. Outputs optionally log-compressed
	// first. A warm-started or resumed run reuses its parent's/checkpoint's
	// transforms so the inherited weights keep operating in the space they
	// were trained in.
	targets := make([][]float64, ds.Len())
	for i, y := range ds.Y {
		row := append([]float64(nil), y...)
		if cfg.LogOutputs {
			for j, v := range row {
				row[j] = log1pSafe(v)
			}
		}
		targets[i] = row
	}
	var inNorm, outNorm *stats.Normalizer
	switch {
	case opts.Resume != nil:
		inNorm, outNorm = opts.Resume.InNorm, opts.Resume.OutNorm
	case opts.Warm != nil:
		if err := checkWarmParent(opts.Warm, ds, cfg); err != nil {
			return nil, nil, err
		}
		inNorm, outNorm = opts.Warm.InNorm, opts.Warm.OutNorm
	default:
		var err error
		inNorm, err = stats.FitNormalizer(ds.X)
		if err != nil {
			return nil, nil, fmt.Errorf("surrogate: input normalizer: %w", err)
		}
		outNorm, err = stats.FitNormalizer(targets)
		if err != nil {
			return nil, nil, fmt.Errorf("surrogate: output normalizer: %w", err)
		}
	}
	if inNorm.Dim() != len(ds.X[0]) || outNorm.Dim() != len(targets[0]) {
		return nil, nil, fmt.Errorf("surrogate: inherited normalizer dims %d/%d do not fit dataset dims %d/%d",
			inNorm.Dim(), outNorm.Dim(), len(ds.X[0]), len(targets[0]))
	}

	full := &nn.Dataset{}
	for i := range ds.X {
		full.X = append(full.X, inNorm.Applied(ds.X[i]))
		full.Y = append(full.Y, outNorm.Applied(targets[i]))
	}
	rng := stats.NewRNG(cfg.Seed + 1)
	trainSet, testSet, err := full.Split(cfg.TestFrac, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: split: %w", err)
	}

	sizes := append([]int{len(ds.X[0])}, cfg.HiddenSizes...)
	sizes = append(sizes, len(targets[0]))
	var net *nn.MLP
	var prior nn.History
	startEpoch := 0
	switch {
	case opts.Resume != nil:
		net = opts.Resume.Net.Clone()
		startEpoch = opts.Resume.Epoch
		prior = opts.Resume.Hist
	case opts.Warm != nil:
		net = opts.Warm.Net.Clone()
	default:
		net, err = nn.NewMLP(sizes, nn.ReLU{}, stats.NewRNG(cfg.Seed+2))
		if err != nil {
			return nil, nil, fmt.Errorf("surrogate: building MLP: %w", err)
		}
	}
	if len(net.Sizes) != len(sizes) {
		return nil, nil, fmt.Errorf("surrogate: inherited network topology %v does not fit configured %v",
			net.Sizes, sizes)
	}
	for i, sz := range sizes {
		if net.Sizes[i] != sz {
			return nil, nil, fmt.Errorf("surrogate: inherited network topology %v does not fit configured %v",
				net.Sizes, sizes)
		}
	}

	s := &Surrogate{
		AlgoName:   ds.Algo.Name,
		AlgoFP:     ds.Algo.Fingerprint(),
		Arch:       ds.Arch,
		Net:        net,
		InNorm:     inNorm,
		OutNorm:    outNorm,
		Mode:       cfg.Mode,
		LogOutputs: cfg.LogOutputs,
		NumTensors: numTensorsFor(ds.Algo, cfg.Mode, len(ds.Y[0])),
	}

	trainCfg := cfg.Train
	trainCfg.Seed = cfg.Seed + 3
	trainCfg.Ctx = opts.Ctx
	trainCfg.StartEpoch = startEpoch
	if opts.OnEpoch != nil {
		var sofar nn.History
		trainCfg.OnEpoch = func(es nn.EpochStats) error {
			sofar.TrainLoss = append(sofar.TrainLoss, es.TrainLoss)
			if !math.IsNaN(es.TestLoss) {
				sofar.TestLoss = append(sofar.TestLoss, es.TestLoss)
			}
			opts.OnEpoch(TrainEpoch{
				Epoch:     es.Epoch,
				Epochs:    es.Epochs,
				TrainLoss: es.TrainLoss,
				TestLoss:  es.TestLoss,
				State: &TrainState{
					Net:     net.Clone(),
					InNorm:  inNorm,
					OutNorm: outNorm,
					Epoch:   es.Epoch + 1,
					Hist:    spliceHistory(prior, sofar),
				},
			})
			return nil
		}
	}
	hist, trainErr := nn.Train(net, trainSet, testSet, trainCfg)
	if hist == nil {
		hist = &nn.History{}
	}
	merged := spliceHistory(prior, *hist)
	if trainErr != nil {
		return nil, &merged, fmt.Errorf("surrogate: training: %w", trainErr)
	}
	return s, &merged, nil
}

// spliceHistory concatenates a checkpoint's loss history with the epochs a
// resumed (or fresh) run actually executed.
func spliceHistory(prior, cur nn.History) nn.History {
	return nn.History{
		TrainLoss: append(append([]float64(nil), prior.TrainLoss...), cur.TrainLoss...),
		TestLoss:  append(append([]float64(nil), prior.TestLoss...), cur.TestLoss...),
	}
}

// checkWarmParent validates a warm-start parent against the dataset and
// config it is about to seed: same workload (by fingerprint when stamped),
// same output representation, and a network whose topology matches the
// configured hidden sizes — transfer across problem shapes of one
// algorithm is the paper's generalization claim; transfer across workloads
// is not.
func checkWarmParent(parent *Surrogate, ds *RawDataset, cfg Config) error {
	if parent.AlgoName != ds.Algo.Name {
		return fmt.Errorf("surrogate: warm-start parent was trained for %q, dataset is %q",
			parent.AlgoName, ds.Algo.Name)
	}
	if parent.AlgoFP != "" && parent.AlgoFP != ds.Algo.Fingerprint() {
		return fmt.Errorf("surrogate: warm-start parent fingerprint %.12s… does not match workload %.12s…",
			parent.AlgoFP, ds.Algo.Fingerprint())
	}
	if parent.Mode != cfg.Mode || parent.LogOutputs != cfg.LogOutputs {
		return errors.New("surrogate: warm-start parent uses a different output representation")
	}
	return nil
}

func numTensorsFor(algo *loopnest.Algorithm, mode OutputMode, outLen int) int {
	if algo != nil {
		return len(algo.Tensors)
	}
	if mode == OutputMetaStats {
		return (outLen - 3) / int(arch.NumLevels)
	}
	return 0
}

func log1pSafe(v float64) float64 {
	if v < 0 {
		// Utilization and normalized costs are non-negative by
		// construction; guard against numeric noise.
		v = 0
	}
	return math.Log1p(v)
}

// expm1Safe inverts log1pSafe.
func expm1Safe(v float64) float64 { return math.Expm1(v) }

// PredictEDP returns the predicted normalized EDP (EDP relative to the
// algorithmic minimum) for a raw encoded mapping vector. For the meta-stats
// representation it is the product of the predicted normalized total energy
// and normalized cycles.
func (s *Surrogate) PredictEDP(rawVec []float64) (float64, error) {
	return s.PredictScalar(rawVec, 1, 1)
}

// PredictScalar predicts the designer objective energy^eExp x delay^dExp in
// lower-bound-normalized units (paper §2.3: the cost function is up to the
// designer). (1,1) is EDP, (1,2) ED²P, (1,0) energy, (0,1) delay. Only the
// meta-statistics output representation supports objectives other than EDP.
func (s *Surrogate) PredictScalar(rawVec []float64, eExp, dExp float64) (float64, error) {
	if !(eExp == 1 && dExp == 1) && s.Mode != OutputMetaStats {
		return 0, errors.New("surrogate: non-EDP objectives need the meta-statistics representation")
	}
	eZ, cZ, err := s.forwardZ(rawVec)
	if err != nil {
		return 0, err
	}
	return s.valueFromZ(eZ, cZ, eExp, dExp), nil
}

// clampPos floors a predicted normalized quantity at a small positive
// value so fractional powers and divisions stay finite; predictions below
// the lower bound are surrogate noise anyway.
func clampPos(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	return v
}

// forwardZ runs the forward pass and extracts the z-space outputs the
// scalar objective depends on: the single output in direct-EDP mode, or
// the total-energy and cycles entries of the meta-statistics vector.
// valueFromZ / rowValueAndDOut turn these into values and gradients; the
// batched path (batch.go) extracts the same components from ForwardBatch
// rows, so value arithmetic exists in exactly one place.
func (s *Surrogate) forwardZ(rawVec []float64) (eZ, cZ float64, err error) {
	if len(rawVec) != s.Net.InDim() {
		return 0, 0, fmt.Errorf("surrogate: input length %d, want %d", len(rawVec), s.Net.InDim())
	}
	if s.Mode != OutputDirectEDP && s.Mode != OutputMetaStats {
		return 0, 0, fmt.Errorf("surrogate: unknown output mode %d", s.Mode)
	}
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	out := s.Net.Forward(ws, x)
	if s.Mode == OutputDirectEDP {
		eZ = out[0]
	} else {
		totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
		eZ, cZ = out[totalIdx], out[cyclesIdx]
	}
	s.putWS(ws)
	return eZ, cZ, nil
}

// valueFromZ derives the predicted objective from forwardZ's z-space
// outputs: denormalize, undo the log compression, and combine per the
// exponents (EDP skips the clamp, matching the paper path's arithmetic
// exactly).
func (s *Surrogate) valueFromZ(eZ, cZ, eExp, dExp float64) float64 {
	if s.Mode == OutputDirectEDP {
		edp := s.OutNorm.InvertOne(0, eZ)
		if s.LogOutputs {
			edp = expm1Safe(edp)
		}
		return edp
	}
	totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
	e := s.OutNorm.InvertOne(totalIdx, eZ)
	c := s.OutNorm.InvertOne(cyclesIdx, cZ)
	if s.LogOutputs {
		e = expm1Safe(e)
		c = expm1Safe(c)
	}
	if eExp == 1 && dExp == 1 {
		return e * c
	}
	return math.Pow(clampPos(e), eExp) * math.Pow(clampPos(c), dExp)
}

// rowValueAndDOut computes the predicted objective for one query's
// z-space outputs and writes the chain-rule gradient of that objective
// with respect to the network outputs into dOut (length OutDim,
// pre-zeroed). It is the single definition of the value/gradient
// formulas, shared by GradientScalar and the batched gradientChunk.
func (s *Surrogate) rowValueAndDOut(eZ, cZ, eExp, dExp float64, dOut []float64) float64 {
	if s.Mode == OutputDirectEDP {
		edp := s.OutNorm.InvertOne(0, eZ)
		if s.LogOutputs {
			edp = expm1Safe(edp)
		}
		d := s.OutNorm.Std[0]
		if s.LogOutputs {
			d *= edp + 1 // d expm1(u)/du = exp(u) = value+1
		}
		dOut[0] = d
		return edp
	}
	totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
	e := s.OutNorm.InvertOne(totalIdx, eZ)
	c := s.OutNorm.InvertOne(cyclesIdx, cZ)
	de := s.OutNorm.Std[totalIdx]
	dc := s.OutNorm.Std[cyclesIdx]
	if eExp == 1 && dExp == 1 {
		if s.LogOutputs {
			eLin, cLin := expm1Safe(e), expm1Safe(c)
			// edp = expm1(e)*expm1(c); d/dz_e = std_e*exp(e)*expm1(c).
			dOut[totalIdx] = de * (eLin + 1) * cLin
			dOut[cyclesIdx] = dc * (cLin + 1) * eLin
			return eLin * cLin
		}
		dOut[totalIdx] = de * c
		dOut[cyclesIdx] = dc * e
		return e * c
	}
	if s.LogOutputs {
		e = expm1Safe(e)
		c = expm1Safe(c)
	}
	eC, dC := clampPos(e), clampPos(c)
	val := math.Pow(eC, eExp) * math.Pow(dC, dExp)
	// dV/de = eExp * e^(eExp-1) * d^dExp, chained through the log and
	// whitening transforms.
	dVdE := eExp * math.Pow(eC, eExp-1) * math.Pow(dC, dExp)
	dVdD := dExp * math.Pow(eC, eExp) * math.Pow(dC, dExp-1)
	dEdz, dDdz := de, dc
	if s.LogOutputs {
		dEdz *= e + 1
		dDdz *= c + 1
	}
	dOut[totalIdx] = dVdE * dEdz
	dOut[cyclesIdx] = dVdD * dDdz
	return val
}

// PredictMetaStats returns the denormalized predicted cost vector in
// lower-bound units (only available in meta-stats mode).
func (s *Surrogate) PredictMetaStats(rawVec []float64) ([]float64, error) {
	if s.Mode != OutputMetaStats {
		return nil, errors.New("surrogate: meta stats unavailable in direct-EDP mode")
	}
	if len(rawVec) != s.Net.InDim() {
		return nil, fmt.Errorf("surrogate: input length %d, want %d", len(rawVec), s.Net.InDim())
	}
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	out := s.Net.Forward(ws, x)
	defer s.putWS(ws)
	meta := make([]float64, len(out))
	for i, z := range out {
		v := s.OutNorm.InvertOne(i, z)
		if s.LogOutputs {
			v = expm1Safe(v)
		}
		meta[i] = v
	}
	return meta, nil
}

// GradientScalar returns the predicted objective energy^eExp x delay^dExp
// and its gradient with respect to the raw encoded mapping vector. Only
// meta-statistics surrogates support objectives other than (1,1).
func (s *Surrogate) GradientScalar(rawVec []float64, eExp, dExp float64) (float64, []float64, error) {
	if !(eExp == 1 && dExp == 1) && s.Mode != OutputMetaStats {
		return 0, nil, errors.New("surrogate: non-EDP objectives need the meta-statistics representation")
	}
	eZ, cZ, err := s.forwardZ(rawVec)
	if err != nil {
		return 0, nil, err
	}
	dOut := make([]float64, s.Net.OutDim())
	val := s.rowValueAndDOut(eZ, cZ, eExp, dExp, dOut)
	// Backprop to the whitened input, then chain through the whitening.
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	gradWhite := s.Net.InputGradient(ws, x, dOut)
	grad := make([]float64, len(gradWhite))
	for i, g := range gradWhite {
		grad[i] = g / s.InNorm.Std[i]
	}
	s.putWS(ws)
	return val, grad, nil
}

// GradientEDP returns the predicted normalized EDP and its gradient with
// respect to the raw encoded mapping vector — the ∇f* of §4.2 that drives
// the gradient search. The problem-id prefix entries of the gradient are
// meaningful but the searcher holds them fixed (the paper freezes p_target
// during Phase 2).
func (s *Surrogate) GradientEDP(rawVec []float64) (float64, []float64, error) {
	return s.GradientScalar(rawVec, 1, 1)
}

// EvaluateQuality computes the mean absolute error of predicted vs. true
// normalized EDP over a raw dataset slice, plus the Pearson correlation of
// their logs — the acceptance metric integration tests and the Figure-7
// experiments use.
func (s *Surrogate) EvaluateQuality(ds *RawDataset, maxSamples int) (mae, corr float64, err error) {
	n := ds.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	if n == 0 {
		return 0, 0, errors.New("surrogate: empty dataset")
	}
	var pred, truth []float64
	for i := 0; i < n; i++ {
		p, err := s.PredictEDP(ds.X[i])
		if err != nil {
			return 0, 0, err
		}
		t := trueEDPFromTarget(ds.Y[i], ds.Mode, s.NumTensors)
		pred = append(pred, math.Log1p(math.Max(0, p)))
		truth = append(truth, math.Log1p(math.Max(0, t)))
		mae += math.Abs(p - t)
	}
	mae /= float64(n)
	corr = pearson(pred, truth)
	return mae, corr, nil
}

// trueEDPFromTarget recovers normalized EDP from a stored target vector.
func trueEDPFromTarget(y []float64, mode OutputMode, nt int) float64 {
	if mode == OutputDirectEDP {
		return y[0]
	}
	totalIdx, _, cyclesIdx := metaIndices(nt)
	return y[totalIdx] * y[cyclesIdx]
}

func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
