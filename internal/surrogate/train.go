package surrogate

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
)

// Surrogate is a trained differentiable approximation f* of the accelerator
// cost function for one (algorithm, accelerator) pair, reusable across all
// problems of the algorithm (§4.1: "the surrogate is trained once, offline
// per target algorithm").
//
// All prediction and gradient methods are safe for concurrent use: the
// network weights are frozen after training and per-call scratch buffers
// come from an internal pool, so one loaded surrogate can serve many search
// jobs at once.
type Surrogate struct {
	AlgoName   string
	Arch       arch.Spec
	Net        *nn.MLP
	InNorm     *stats.Normalizer
	OutNorm    *stats.Normalizer
	Mode       OutputMode
	LogOutputs bool
	NumTensors int

	wsPool sync.Pool // of *nn.Workspace for s.Net
}

// getWS takes a scratch workspace from the pool, allocating on first use.
func (s *Surrogate) getWS() *nn.Workspace {
	if ws, ok := s.wsPool.Get().(*nn.Workspace); ok {
		return ws
	}
	return s.Net.NewWorkspace()
}

// putWS returns a workspace to the pool. Callers must copy out any
// workspace-owned slices (Forward/InputGradient results) first.
func (s *Surrogate) putWS(ws *nn.Workspace) { s.wsPool.Put(ws) }

// Train fits a surrogate on the raw dataset per the configured recipe and
// returns it with the per-epoch loss history (the Figure-7a data).
func Train(ds *RawDataset, cfg Config) (*Surrogate, *nn.History, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if ds.Len() < 10 {
		return nil, nil, fmt.Errorf("surrogate: dataset of %d samples is too small", ds.Len())
	}
	if ds.Mode != cfg.Mode {
		return nil, nil, fmt.Errorf("surrogate: dataset mode %d != config mode %d", ds.Mode, cfg.Mode)
	}

	// Whitening (§4.1.2/§4.1.3): inputs and outputs each normalized to mean
	// 0, std 1 over the training set. Outputs optionally log-compressed
	// first.
	targets := make([][]float64, ds.Len())
	for i, y := range ds.Y {
		row := append([]float64(nil), y...)
		if cfg.LogOutputs {
			for j, v := range row {
				row[j] = log1pSafe(v)
			}
		}
		targets[i] = row
	}
	inNorm, err := stats.FitNormalizer(ds.X)
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: input normalizer: %w", err)
	}
	outNorm, err := stats.FitNormalizer(targets)
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: output normalizer: %w", err)
	}

	full := &nn.Dataset{}
	for i := range ds.X {
		full.X = append(full.X, inNorm.Applied(ds.X[i]))
		full.Y = append(full.Y, outNorm.Applied(targets[i]))
	}
	rng := stats.NewRNG(cfg.Seed + 1)
	trainSet, testSet, err := full.Split(cfg.TestFrac, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: split: %w", err)
	}

	sizes := append([]int{len(ds.X[0])}, cfg.HiddenSizes...)
	sizes = append(sizes, len(targets[0]))
	net, err := nn.NewMLP(sizes, nn.ReLU{}, stats.NewRNG(cfg.Seed+2))
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: building MLP: %w", err)
	}
	trainCfg := cfg.Train
	trainCfg.Seed = cfg.Seed + 3
	hist, err := nn.Train(net, trainSet, testSet, trainCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("surrogate: training: %w", err)
	}

	s := &Surrogate{
		AlgoName:   ds.Algo.Name,
		Arch:       ds.Arch,
		Net:        net,
		InNorm:     inNorm,
		OutNorm:    outNorm,
		Mode:       cfg.Mode,
		LogOutputs: cfg.LogOutputs,
		NumTensors: numTensorsFor(ds.Algo, cfg.Mode, len(ds.Y[0])),
	}
	return s, hist, nil
}

func numTensorsFor(algo *loopnest.Algorithm, mode OutputMode, outLen int) int {
	if algo != nil {
		return len(algo.Tensors)
	}
	if mode == OutputMetaStats {
		return (outLen - 3) / int(arch.NumLevels)
	}
	return 0
}

func log1pSafe(v float64) float64 {
	if v < 0 {
		// Utilization and normalized costs are non-negative by
		// construction; guard against numeric noise.
		v = 0
	}
	return math.Log1p(v)
}

// expm1Safe inverts log1pSafe.
func expm1Safe(v float64) float64 { return math.Expm1(v) }

// PredictEDP returns the predicted normalized EDP (EDP relative to the
// algorithmic minimum) for a raw encoded mapping vector. For the meta-stats
// representation it is the product of the predicted normalized total energy
// and normalized cycles.
func (s *Surrogate) PredictEDP(rawVec []float64) (float64, error) {
	edp, _, err := s.edpAndOutputs(rawVec)
	return edp, err
}

// PredictScalar predicts the designer objective energy^eExp x delay^dExp in
// lower-bound-normalized units (paper §2.3: the cost function is up to the
// designer). (1,1) is EDP, (1,2) ED²P, (1,0) energy, (0,1) delay. Only the
// meta-statistics output representation supports objectives other than EDP.
func (s *Surrogate) PredictScalar(rawVec []float64, eExp, dExp float64) (float64, error) {
	if eExp == 1 && dExp == 1 {
		return s.PredictEDP(rawVec)
	}
	if s.Mode != OutputMetaStats {
		return 0, errors.New("surrogate: non-EDP objectives need the meta-statistics representation")
	}
	e, d, _, _, err := s.energyDelay(rawVec)
	if err != nil {
		return 0, err
	}
	return math.Pow(clampPos(e), eExp) * math.Pow(clampPos(d), dExp), nil
}

// clampPos floors a predicted normalized quantity at a small positive
// value so fractional powers and divisions stay finite; predictions below
// the lower bound are surrogate noise anyway.
func clampPos(v float64) float64 {
	if v < 1e-6 {
		return 1e-6
	}
	return v
}

// energyDelay runs the forward pass and returns the denormalized
// (lower-bound-unit) predicted total energy and cycles, plus the raw
// outputs and the z-space indices needed for gradients.
func (s *Surrogate) energyDelay(rawVec []float64) (e, d float64, out []float64, idx [2]int, err error) {
	if len(rawVec) != s.Net.InDim() {
		return 0, 0, nil, idx, fmt.Errorf("surrogate: input length %d, want %d", len(rawVec), s.Net.InDim())
	}
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	out = append([]float64(nil), s.Net.Forward(ws, x)...)
	s.putWS(ws)
	totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
	idx = [2]int{totalIdx, cyclesIdx}
	e = s.OutNorm.InvertOne(totalIdx, out[totalIdx])
	d = s.OutNorm.InvertOne(cyclesIdx, out[cyclesIdx])
	if s.LogOutputs {
		e = expm1Safe(e)
		d = expm1Safe(d)
	}
	return e, d, out, idx, nil
}

// edpAndOutputs runs the forward pass and derives the scalar EDP along with
// the raw network outputs (z-space).
func (s *Surrogate) edpAndOutputs(rawVec []float64) (float64, []float64, error) {
	if len(rawVec) != s.Net.InDim() {
		return 0, nil, fmt.Errorf("surrogate: input length %d, want %d", len(rawVec), s.Net.InDim())
	}
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	out := append([]float64(nil), s.Net.Forward(ws, x)...)
	s.putWS(ws)
	switch s.Mode {
	case OutputDirectEDP:
		edp := s.OutNorm.InvertOne(0, out[0])
		if s.LogOutputs {
			edp = expm1Safe(edp)
		}
		return edp, out, nil
	case OutputMetaStats:
		totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
		e := s.OutNorm.InvertOne(totalIdx, out[totalIdx])
		c := s.OutNorm.InvertOne(cyclesIdx, out[cyclesIdx])
		if s.LogOutputs {
			e = expm1Safe(e)
			c = expm1Safe(c)
		}
		return e * c, out, nil
	}
	return 0, nil, fmt.Errorf("surrogate: unknown output mode %d", s.Mode)
}

// PredictMetaStats returns the denormalized predicted cost vector in
// lower-bound units (only available in meta-stats mode).
func (s *Surrogate) PredictMetaStats(rawVec []float64) ([]float64, error) {
	if s.Mode != OutputMetaStats {
		return nil, errors.New("surrogate: meta stats unavailable in direct-EDP mode")
	}
	if len(rawVec) != s.Net.InDim() {
		return nil, fmt.Errorf("surrogate: input length %d, want %d", len(rawVec), s.Net.InDim())
	}
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	out := s.Net.Forward(ws, x)
	defer s.putWS(ws)
	meta := make([]float64, len(out))
	for i, z := range out {
		v := s.OutNorm.InvertOne(i, z)
		if s.LogOutputs {
			v = expm1Safe(v)
		}
		meta[i] = v
	}
	return meta, nil
}

// GradientScalar returns the predicted objective energy^eExp x delay^dExp
// and its gradient with respect to the raw encoded mapping vector. Only
// meta-statistics surrogates support objectives other than (1,1).
func (s *Surrogate) GradientScalar(rawVec []float64, eExp, dExp float64) (float64, []float64, error) {
	if eExp == 1 && dExp == 1 {
		return s.GradientEDP(rawVec)
	}
	if s.Mode != OutputMetaStats {
		return 0, nil, errors.New("surrogate: non-EDP objectives need the meta-statistics representation")
	}
	e, d, out, idx, err := s.energyDelay(rawVec)
	if err != nil {
		return 0, nil, err
	}
	eC, dC := clampPos(e), clampPos(d)
	val := math.Pow(eC, eExp) * math.Pow(dC, dExp)
	// dV/de = eExp * e^(eExp-1) * d^dExp, chained through the log/whitening
	// transforms exactly as in GradientEDP.
	dOut := make([]float64, s.Net.OutDim())
	dVdE := eExp * math.Pow(eC, eExp-1) * math.Pow(dC, dExp)
	dVdD := dExp * math.Pow(eC, eExp) * math.Pow(dC, dExp-1)
	dEdz := s.OutNorm.Std[idx[0]]
	dDdz := s.OutNorm.Std[idx[1]]
	if s.LogOutputs {
		dEdz *= e + 1
		dDdz *= d + 1
	}
	dOut[idx[0]] = dVdE * dEdz
	dOut[idx[1]] = dVdD * dDdz
	_ = out
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	gradWhite := s.Net.InputGradient(ws, x, dOut)
	grad := make([]float64, len(gradWhite))
	for i, g := range gradWhite {
		grad[i] = g / s.InNorm.Std[i]
	}
	s.putWS(ws)
	return val, grad, nil
}

// GradientEDP returns the predicted normalized EDP and its gradient with
// respect to the raw encoded mapping vector — the ∇f* of §4.2 that drives
// the gradient search. The problem-id prefix entries of the gradient are
// meaningful but the searcher holds them fixed (the paper freezes p_target
// during Phase 2).
func (s *Surrogate) GradientEDP(rawVec []float64) (float64, []float64, error) {
	edp, out, err := s.edpAndOutputs(rawVec)
	if err != nil {
		return 0, nil, err
	}
	// Build dEDP/d(network outputs in z-space).
	dOut := make([]float64, s.Net.OutDim())
	switch s.Mode {
	case OutputDirectEDP:
		// edp = g(z0) with g = expm1(invert) or invert.
		d := s.OutNorm.Std[0]
		if s.LogOutputs {
			d *= edp + 1 // d expm1(u)/du = exp(u) = value+1
		}
		dOut[0] = d
	case OutputMetaStats:
		totalIdx, _, cyclesIdx := metaIndices(s.NumTensors)
		e := s.OutNorm.InvertOne(totalIdx, out[totalIdx])
		c := s.OutNorm.InvertOne(cyclesIdx, out[cyclesIdx])
		de := s.OutNorm.Std[totalIdx]
		dc := s.OutNorm.Std[cyclesIdx]
		if s.LogOutputs {
			eLin, cLin := expm1Safe(e), expm1Safe(c)
			// edp = expm1(e)*expm1(c); d/dz_e = std_e*exp(e)*expm1(c).
			dOut[totalIdx] = de * (eLin + 1) * cLin
			dOut[cyclesIdx] = dc * (cLin + 1) * eLin
		} else {
			dOut[totalIdx] = de * c
			dOut[cyclesIdx] = dc * e
		}
	}
	// Backprop to the whitened input, then chain through the whitening.
	x := s.InNorm.Applied(rawVec)
	ws := s.getWS()
	gradWhite := s.Net.InputGradient(ws, x, dOut)
	grad := make([]float64, len(gradWhite))
	for i, g := range gradWhite {
		grad[i] = g / s.InNorm.Std[i]
	}
	s.putWS(ws)
	return edp, grad, nil
}

// EvaluateQuality computes the mean absolute error of predicted vs. true
// normalized EDP over a raw dataset slice, plus the Pearson correlation of
// their logs — the acceptance metric integration tests and the Figure-7
// experiments use.
func (s *Surrogate) EvaluateQuality(ds *RawDataset, maxSamples int) (mae, corr float64, err error) {
	n := ds.Len()
	if maxSamples > 0 && n > maxSamples {
		n = maxSamples
	}
	if n == 0 {
		return 0, 0, errors.New("surrogate: empty dataset")
	}
	var pred, truth []float64
	for i := 0; i < n; i++ {
		p, err := s.PredictEDP(ds.X[i])
		if err != nil {
			return 0, 0, err
		}
		t := trueEDPFromTarget(ds.Y[i], ds.Mode, s.NumTensors)
		pred = append(pred, math.Log1p(math.Max(0, p)))
		truth = append(truth, math.Log1p(math.Max(0, t)))
		mae += math.Abs(p - t)
	}
	mae /= float64(n)
	corr = pearson(pred, truth)
	return mae, corr, nil
}

// trueEDPFromTarget recovers normalized EDP from a stored target vector.
func trueEDPFromTarget(y []float64, mode OutputMode, nt int) float64 {
	if mode == OutputDirectEDP {
		return y[0]
	}
	totalIdx, _, cyclesIdx := metaIndices(nt)
	return y[totalIdx] * y[cyclesIdx]
}

func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}
