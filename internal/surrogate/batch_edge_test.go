package surrogate

import (
	"strings"
	"sync"
	"testing"
)

// Edge cases of the batched inference contract: empty batches, ragged
// inputs, destination-reuse corner cases, chunk-boundary sizes, and
// concurrent callers mixing batch sizes. These guard the service batcher
// (internal/infer), which feeds coalesced, arbitrarily-sized batches from
// many jobs into these two entry points.

// TestBatchEmptyInputs pins the empty-batch fast path: no error, length-0
// results, and a caller's dst contents beyond the result are untouched.
func TestBatchEmptyInputs(t *testing.T) {
	sur, _ := batchFixture(t)
	for _, vecs := range [][][]float64{nil, {}} {
		vals, err := sur.PredictBatch(vecs, 1, 1, nil)
		if err != nil || len(vals) != 0 {
			t.Fatalf("PredictBatch(%v): vals=%v err=%v", vecs, vals, err)
		}
		vals, grads, err := sur.GradientBatch(vecs, 1, 1, nil, nil)
		if err != nil || len(vals) != 0 || len(grads) != 0 {
			t.Fatalf("GradientBatch(%v): vals=%v grads=%v err=%v", vecs, vals, grads, err)
		}
	}
	dst := []float64{7, 8, 9}
	got, err := sur.PredictBatch(nil, 1, 1, dst)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch with dst: got=%v err=%v", got, err)
	}
	if dst[0] != 7 || dst[1] != 8 || dst[2] != 9 {
		t.Fatalf("empty batch scribbled on dst: %v", dst)
	}
}

// TestBatchRaggedRejectedUpFront checks that a ragged batch — one row of
// the wrong width anywhere, including past the internal chunk boundary —
// fails as a whole before any output is written, naming the bad row.
func TestBatchRaggedRejectedUpFront(t *testing.T) {
	sur, vecs := batchFixture(t)
	in := sur.Net.InDim()
	for _, bad := range []int{0, 1, len(vecs) - 1} {
		ragged := make([][]float64, len(vecs))
		copy(ragged, vecs)
		switch bad % 3 {
		case 0:
			ragged[bad] = nil
		case 1:
			ragged[bad] = vecs[bad][:in-1]
		default:
			ragged[bad] = append(append([]float64(nil), vecs[bad]...), 0)
		}
		sentinel := make([]float64, len(vecs))
		for i := range sentinel {
			sentinel[i] = -12345
		}
		if _, err := sur.PredictBatch(ragged, 1, 1, sentinel); err == nil {
			t.Fatalf("ragged row %d accepted by PredictBatch", bad)
		} else if !strings.Contains(err.Error(), "batch input") {
			t.Fatalf("ragged row %d: unhelpful error %v", bad, err)
		}
		for i, v := range sentinel {
			if v != -12345 {
				t.Fatalf("ragged row %d: PredictBatch wrote dst[%d]=%v before failing", bad, i, v)
			}
		}
		if _, _, err := sur.GradientBatch(ragged, 1, 1, nil, nil); err == nil {
			t.Fatalf("ragged row %d accepted by GradientBatch", bad)
		}
	}
}

// TestGradientBatchGradsReuseMixed pins grads-buffer semantics when the
// caller's rows are a mix of correctly sized, nil, and wrongly sized:
// correct rows are written in place, the rest are replaced with fresh
// rows of the right width, and the outer slice is reused when it fits.
func TestGradientBatchGradsReuseMixed(t *testing.T) {
	sur, vecs := batchFixture(t)
	in := sur.Net.InDim()
	n := 4
	grads := make([][]float64, n, n+2)
	grads[0] = make([]float64, in)   // right size: reused
	grads[1] = nil                   // missing: allocated
	grads[2] = make([]float64, in-3) // too short: replaced
	grads[3] = make([]float64, in+5) // too long: replaced
	keep0 := &grads[0][0]
	_, got, err := sur.GradientBatch(vecs[:n], 1, 1, nil, grads)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &grads[0] {
		t.Fatal("outer grads slice with capacity was not reused")
	}
	if &got[0][0] != keep0 {
		t.Fatal("correctly sized grads row was not written in place")
	}
	for i, g := range got {
		if len(g) != in {
			t.Fatalf("grads[%d] has length %d, want %d", i, len(g), in)
		}
	}
	// The replaced rows must hold the same gradient a clean call computes.
	_, ref, err := sur.GradientBatch(vecs[:n], 1, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for j := range ref[i] {
			if got[i][j] != ref[i][j] {
				t.Fatalf("grads[%d][%d]=%v, want %v", i, j, got[i][j], ref[i][j])
			}
		}
	}
}

// TestBatchChunkBoundarySizes runs batch sizes straddling the internal
// maxBatchRows chunking (31, 32, 33, 64, 69) and checks agreement with
// the scalar path on every row (bit-identity on the default build,
// tolerance under -tags simd) — the chunk seams must be invisible.
func TestBatchChunkBoundarySizes(t *testing.T) {
	sur, base := batchFixture(t)
	// Extend the fixture set by cycling so sizes beyond len(base) work.
	vecs := make([][]float64, 0, 69)
	for len(vecs) < 69 {
		vecs = append(vecs, base[len(vecs)%len(base)])
	}
	for _, n := range []int{1, maxBatchRows - 1, maxBatchRows, maxBatchRows + 1, 2 * maxBatchRows, 69} {
		vals, err := sur.PredictBatch(vecs[:n], 1, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		gvals, grads, err := sur.GradientBatch(vecs[:n], 1, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want, err := sur.PredictScalar(vecs[i], 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !batchEq(vals[i], want) || !batchEq(gvals[i], want) {
				t.Fatalf("n=%d row %d: batch=%v gradbatch=%v scalar=%v", n, i, vals[i], gvals[i], want)
			}
			wantV, wantG, err := sur.GradientScalar(vecs[i], 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !batchEq(gvals[i], wantV) {
				t.Fatalf("n=%d row %d: gradient value %v, scalar %v", n, i, gvals[i], wantV)
			}
			for j := range wantG {
				if !batchEq(grads[i][j], wantG[j]) {
					t.Fatalf("n=%d row %d grad[%d]: %v vs %v", n, i, j, grads[i][j], wantG[j])
				}
			}
		}
	}
}

// TestBatchConcurrentMixedSizes hammers the scratch pool from goroutines
// whose batch sizes differ (1 row up to 2x the chunk size, straddling the
// pool's grow-on-demand path) — run with -race; every result must match
// the serial reference.
func TestBatchConcurrentMixedSizes(t *testing.T) {
	sur, base := batchFixture(t)
	vecs := make([][]float64, 0, 64)
	for len(vecs) < 64 {
		vecs = append(vecs, base[len(vecs)%len(base)])
	}
	ref, err := sur.PredictBatch(vecs, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	refG := make([][]float64, len(vecs))
	if _, refG, err = sur.GradientBatch(vecs, 1, 1, nil, refG); err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 3, maxBatchRows, maxBatchRows + 1, 64}
	var wg sync.WaitGroup
	for g := 0; g < 2*len(sizes); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := sizes[g%len(sizes)]
			for iter := 0; iter < 6; iter++ {
				if g%2 == 0 {
					vals, err := sur.PredictBatch(vecs[:n], 1, 1, nil)
					if err != nil {
						t.Error(err)
						return
					}
					for i := range vals {
						if vals[i] != ref[i] {
							t.Errorf("size %d: vals[%d]=%v, want %v", n, i, vals[i], ref[i])
							return
						}
					}
				} else {
					_, grads, err := sur.GradientBatch(vecs[:n], 1, 1, nil, nil)
					if err != nil {
						t.Error(err)
						return
					}
					for i := range grads {
						for j := range grads[i] {
							if grads[i][j] != refG[i][j] {
								t.Errorf("size %d: grads[%d][%d] diverged", n, i, j)
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
