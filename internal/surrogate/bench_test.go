package surrogate

import (
	"fmt"
	"testing"

	"mindmappings/internal/stats"
)

// Surrogate-query throughput benchmarks: the scalar path (one MatVec
// chain per query, the pre-batching baseline) against PredictBatch /
// GradientBatch at several batch widths. Every benchmark normalizes to
// one *query* per op, so ns/op values are directly comparable across
// scalar and batched variants; BENCH_search.json records the resulting
// speedups. The network topology mirrors SmallConfig on CNN-Layer
// (62-wide input, [64 128 128 64] hidden, 12 meta-stats outputs).

const (
	benchInDim   = 62
	benchTensors = 3
)

func benchHidden() []int { return []int{64, 128, 128, 64} }

func benchVectors(n int) [][]float64 {
	rng := stats.NewRNG(11)
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, benchInDim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return vecs
}

func BenchmarkPredictScalar(b *testing.B) {
	sur := newSyntheticSurrogate(b, benchInDim, benchHidden(), benchTensors)
	vecs := benchVectors(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sur.PredictScalar(vecs[i%len(vecs)], 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			sur := newSyntheticSurrogate(b, benchInDim, benchHidden(), benchTensors)
			vecs := benchVectors(batch)
			vals := make([]float64, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				var err error
				if vals, err = sur.PredictBatch(vecs, 1, 1, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGradientScalar(b *testing.B) {
	sur := newSyntheticSurrogate(b, benchInDim, benchHidden(), benchTensors)
	vecs := benchVectors(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sur.GradientScalar(vecs[i%len(vecs)], 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGradientBatch(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			sur := newSyntheticSurrogate(b, benchInDim, benchHidden(), benchTensors)
			vecs := benchVectors(batch)
			vals := make([]float64, batch)
			grads := make([][]float64, batch)
			for i := range grads {
				grads[i] = make([]float64, benchInDim)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				var err error
				if vals, grads, err = sur.GradientBatch(vecs, 1, 1, vals, grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
