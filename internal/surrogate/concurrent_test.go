package surrogate

import (
	"math"
	"sync"
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/stats"
)

// TestConcurrentPrediction exercises every prediction and gradient entry
// point from many goroutines against one shared surrogate, checking that
// concurrent results match a single-threaded baseline (run with -race to
// catch scratch-buffer sharing regressions — the serve job manager depends
// on this property).
func TestConcurrentPrediction(t *testing.T) {
	_, sur, _ := cnnFixture(t)
	p, err := loopnest.NewCNNProblem("conc", 1, 32, 16, 7, 7, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	space, err := mapspace.New(arch.Default(2), p)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	const nVecs = 8
	vecs := make([][]float64, nVecs)
	wantEDP := make([]float64, nVecs)
	wantGrad := make([][]float64, nVecs)
	for i := range vecs {
		m := space.Random(rng)
		vecs[i] = space.Encode(&m)
		edp, grad, err := sur.GradientEDP(vecs[i])
		if err != nil {
			t.Fatal(err)
		}
		wantEDP[i] = edp
		wantGrad[i] = grad
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				i := (g + iter) % nVecs
				edp, grad, err := sur.GradientEDP(vecs[i])
				if err != nil {
					errs <- err
					return
				}
				if edp != wantEDP[i] {
					t.Errorf("concurrent GradientEDP drifted: %v != %v", edp, wantEDP[i])
					return
				}
				for j := range grad {
					if grad[j] != wantGrad[i][j] {
						t.Errorf("concurrent gradient drifted at %d", j)
						return
					}
				}
				if p, err := sur.PredictEDP(vecs[i]); err != nil || p != wantEDP[i] {
					t.Errorf("concurrent PredictEDP drifted: %v (err %v)", p, err)
					return
				}
				if _, err := sur.PredictMetaStats(vecs[i]); err != nil {
					errs <- err
					return
				}
				if v, err := sur.PredictScalar(vecs[i], 1, 2); err != nil || math.IsNaN(v) {
					errs <- err
					return
				}
				if _, _, err := sur.GradientScalar(vecs[i], 0, 1); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
