package surrogate

import (
	"testing"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
)

// TestWarmStartReachesTargetLossFaster is the generalization-claim
// measurement behind the BENCH_search.json warm-vs-cold row: a surrogate
// warm-started from a parent trained on a different draw of representative
// problems of the same workload reaches the cold run's final test loss in
// measurably fewer epochs. The paper trains once per algorithm and reuses
// the surrogate across problems (§4.1); warm-starting is the online
// version of that reuse — transfer across problem shapes, not workloads.
func TestWarmStartReachesTargetLossFaster(t *testing.T) {
	const epochs = 24
	base := TinyConfig()
	base.HiddenSizes = []int{32, 32}
	base.Samples = 2500
	base.Problems = 6
	base.Train.Epochs = epochs
	algo := loopnest.MustAlgorithm("conv1d")
	a := arch.Default(2)

	// Parent: trained on one draw of representative problems.
	parentCfg := base
	parentCfg.Seed = 1
	dsA, err := Generate(algo, a, parentCfg)
	if err != nil {
		t.Fatal(err)
	}
	parent, _, err := Train(dsA, parentCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Target task: a different draw (different seed => different
	// representative problems and samples).
	childCfg := base
	childCfg.Seed = 2
	dsB, err := Generate(algo, a, childCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, coldHist, err := Train(dsB, childCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, warmHist, err := TrainWith(dsB, childCfg, TrainOptions{Warm: parent})
	if err != nil {
		t.Fatal(err)
	}

	target := coldHist.FinalTest()
	epochsTo := func(hist []float64) int {
		for i, v := range hist {
			if v <= target {
				return i + 1
			}
		}
		return len(hist) + 1
	}
	coldEpochs := epochsTo(coldHist.TestLoss) // == epochs by construction
	warmEpochs := epochsTo(warmHist.TestLoss)
	t.Logf("warm-vs-cold epochs to test loss %.4f: cold %d, warm %d (warm final %.4f)",
		target, coldEpochs, warmEpochs, warmHist.FinalTest())
	if warmEpochs >= coldEpochs {
		t.Fatalf("warm start did not converge faster: warm %d epochs vs cold %d to reach %.4f",
			warmEpochs, coldEpochs, target)
	}
}
