// Surrogate-training walkthrough (Phase 1, paper §4.1): generate a
// training set by sampling valid mappings across representative CNN
// problems, train the MLP surrogate under the paper's recipe (Huber loss,
// SGD + momentum, step-decayed learning rate), inspect the loss curve
// (Figure 7a) and prediction quality, and persist the model for later
// Phase-2 searches.
//
// Run with: go run ./examples/surrogatetrain
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/surrogate"
	_ "mindmappings/internal/workload" // register the built-in workloads
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := surrogate.TinyConfig()
	algo, err := loopnest.AlgorithmByName("cnn-layer")
	if err != nil {
		return err
	}
	accel := arch.Default(2)

	fmt.Printf("generating %d samples across %d representative CNN problems...\n",
		cfg.Samples, cfg.Problems)
	start := time.Now()
	ds, err := surrogate.Generate(algo, accel, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  %d samples (%d-wide mapping vectors, %d-wide meta-statistics) in %v\n",
		ds.Len(), len(ds.X[0]), len(ds.Y[0]), time.Since(start).Round(time.Millisecond))

	fmt.Printf("\ntraining the MLP surrogate (%v hidden, Huber loss, %d epochs)...\n",
		cfg.HiddenSizes, cfg.Train.Epochs)
	start = time.Now()
	sur, hist, err := surrogate.Train(ds, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  done in %v; loss curve (Figure 7a):\n", time.Since(start).Round(time.Millisecond))
	step := len(hist.TrainLoss) / 8
	if step < 1 {
		step = 1
	}
	for e := 0; e < len(hist.TrainLoss); e += step {
		fmt.Printf("  epoch %3d  train %.4f  test %.4f\n", e, hist.TrainLoss[e], hist.TestLoss[e])
	}
	fmt.Printf("  epoch %3d  train %.4f  test %.4f (final)\n",
		len(hist.TrainLoss)-1, hist.FinalTrain(), hist.FinalTest())

	mae, corr, err := sur.EvaluateQuality(ds, 2000)
	if err != nil {
		return err
	}
	fmt.Printf("\nprediction quality on the sampled distribution:\n")
	fmt.Printf("  normalized-EDP MAE   %.1f\n  log-EDP correlation  %.3f\n", mae, corr)

	const out = "cnn.surrogate"
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sur.Save(f); err != nil {
		return err
	}
	fmt.Printf("\nsaved to %s — reuse it with:\n  go run ./cmd/mindmappings search -algo cnn-layer -surrogate %s -problem ResNet_Conv_4\n", out, out)
	return nil
}
