// Custom-algorithm example: Mind Mappings is target-domain independent
// (paper contribution 1: "we require neither expert knowledge in the target
// application domain(s), nor any domain specific heuristics"). This example
// shows what a downstream user does to map a brand-new algorithm onto the
// accelerator: write its einsum as a one-line declarative spec — here the
// Tucker-style tensor-times-matrix-chain contraction TTMc, which appears
// nowhere in the paper or the built-in registry — and everything else (loop
// dimensions, tensor footprints, map space, cost model, surrogate training,
// gradient search) is derived for free.
//
// Run with: go run ./examples/customalgo
package main

import (
	"fmt"
	"log"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
	"mindmappings/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// TTMc: O[i,j,k] = Σ_l Σ_m A[i,l,m]·B[l,j]·C[m,k] — a 3-operand
	// contraction from Tucker decomposition. The spec is the whole
	// "integration": the compiler derives dimensions (i,j,k,l,m), each
	// tensor's relevance set and footprint, and the output tensor; the
	// sample space guides Phase-1 problem sampling. Registering makes the
	// workload addressable by name everywhere (CLI, HTTP service, dataset
	// files) in this process.
	algo, err := workload.RegisterSpec(workload.Spec{
		Name: "ttmc",
		Expr: "O[i,j,k] += A[i,l,m] * B[l,j] * C[m,k]",
		SampleSpace: map[string][]int{
			"i": {32, 64, 128, 256},
			"j": {8, 16, 32},
			"k": {8, 16, 32},
			"l": {32, 64, 128, 256},
			"m": {32, 64, 128, 256},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("registered %q: %d dims, %d tensors, %d operands/MAC, fingerprint %.12s…\n\n",
		algo.Name, algo.NumDims(), len(algo.Tensors), algo.OperandsPerMAC, algo.Fingerprint())

	// The TTMc datapath consumes 3 operands per MAC, like MTTKRP.
	mapper, err := core.NewMapper(algo, arch.Default(len(algo.Tensors)-1))
	if err != nil {
		return err
	}

	fmt.Println("phase 1: training a surrogate for the brand-new ttmc workload...")
	cfg := surrogate.TinyConfig()
	cfg.Samples = 5000
	start := time.Now()
	if _, err := mapper.TrainSurrogate(cfg); err != nil {
		return err
	}
	fmt.Printf("  done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Target: a Tucker-rank shape the surrogate never saw.
	prob, err := algo.ProblemFromDims("tucker-384", map[string]int{
		"i": 384, "j": 24, "k": 24, "l": 96, "m": 96,
	})
	if err != nil {
		return err
	}
	pc, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}

	fmt.Printf("phase 2: mapping %s (%.3g MACs, |M| <= 10^%.1f)\n",
		prob.String(), prob.MACs(), pc.Space.SizeLog10())
	res, err := mapper.FindMapping(pc, search.Budget{MaxEvals: 600}, 1)
	if err != nil {
		return err
	}
	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest mapping: %.1fx the algorithmic minimum "+
		"(%.4g pJ, %.4g cycles, %.0f%% utilization)\n\n",
		norm, cost.TotalEnergyPJ, cost.Cycles, 100*cost.Utilization)
	fmt.Print(pc.Space.RenderLoopNest(&res.Best))

	// Sanity reference: plain SA on the same budget.
	pc2, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}
	saRes, err := mapper.SearchWith(search.SimulatedAnnealing{}, pc2, search.Budget{MaxEvals: 600}, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nreference: SA with the same budget reaches %.1fx (MM: %.1fx)\n",
		saRes.BestEDP, res.BestEDP)
	return nil
}
