// Custom-algorithm example: Mind Mappings is target-domain independent
// (paper contribution 1: "we require neither expert knowledge in the target
// application domain(s), nor any domain specific heuristics"). This example
// shows what a downstream user does to map a brand-new algorithm — batched
// matrix multiplication, which appears nowhere in the paper — onto the
// accelerator: declare the loop dimensions, the tensors with their
// footprints, and representative problem sizes; everything else (map space,
// cost model, surrogate training, gradient search) comes for free.
//
// Run with: go run ./examples/customalgo
package main

import (
	"fmt"
	"log"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
)

// Batched GEMM: O[b,m,n] = Σ_k A[b,m,k] · B[b,k,n], dims (B, M, N, K).
const (
	dimB = iota
	dimM
	dimN
	dimK
)

// newBatchedGEMM declares the algorithm. The footprint closures are the
// only "math" a user writes; relevance sets drive the cost model's reuse
// analysis automatically.
func newBatchedGEMM() *loopnest.Algorithm {
	return &loopnest.Algorithm{
		Name:           "batched-gemm",
		DimNames:       []string{"B", "M", "N", "K"},
		OperandsPerMAC: 2,
		Tensors: []loopnest.Tensor{
			{
				Name: "A",
				Dims: []int{dimB, dimM, dimK},
				Footprint: func(t []int) int64 {
					return int64(t[dimB]) * int64(t[dimM]) * int64(t[dimK])
				},
			},
			{
				Name: "B",
				Dims: []int{dimB, dimK, dimN},
				Footprint: func(t []int) int64 {
					return int64(t[dimB]) * int64(t[dimK]) * int64(t[dimN])
				},
			},
			{
				Name:   "O",
				Dims:   []int{dimB, dimM, dimN},
				Output: true,
				Footprint: func(t []int) int64 {
					return int64(t[dimB]) * int64(t[dimM]) * int64(t[dimN])
				},
			},
		},
		// Representative sizes for Phase-1 sampling: transformer-ish
		// attention and MLP shapes.
		SampleSpace: [][]int{
			{1, 2, 4, 8, 16},               // B
			{64, 128, 256, 512, 1024},      // M
			{64, 128, 256, 512, 1024},      // N
			{64, 128, 256, 512, 768, 1024}, // K
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	algo := newBatchedGEMM()
	mapper, err := core.NewMapper(algo, arch.Default(2))
	if err != nil {
		return err
	}

	fmt.Println("phase 1: training a surrogate for the brand-new batched-gemm algorithm...")
	cfg := surrogate.TinyConfig()
	cfg.Samples = 5000
	start := time.Now()
	if _, err := mapper.TrainSurrogate(cfg); err != nil {
		return err
	}
	fmt.Printf("  done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Target: an attention-score GEMM shape the surrogate never saw.
	prob := loopnest.Problem{
		Algo:  algo,
		Name:  "attention-qk",
		Shape: []int{8, 384, 384, 96}, // B=8, M=N=384, K=96
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	pc, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}

	fmt.Printf("phase 2: mapping %s (%.3g MACs, |M| <= 10^%.1f)\n",
		prob.String(), prob.MACs(), pc.Space.SizeLog10())
	res, err := mapper.FindMapping(pc, search.Budget{MaxEvals: 600}, 1)
	if err != nil {
		return err
	}
	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest mapping: %.1fx the algorithmic minimum "+
		"(%.4g pJ, %.4g cycles, %.0f%% utilization)\n\n",
		norm, cost.TotalEnergyPJ, cost.Cycles, 100*cost.Utilization)
	fmt.Print(pc.Space.RenderLoopNest(&res.Best))

	// Sanity reference: plain SA on the same budget.
	pc2, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}
	saRes, err := mapper.SearchWith(search.SimulatedAnnealing{}, pc2, search.Budget{MaxEvals: 600}, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nreference: SA with the same budget reaches %.1fx (MM: %.1fx)\n",
		saRes.BestEDP, res.BestEDP)
	return nil
}
