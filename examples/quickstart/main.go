// Quickstart: the complete Mind Mappings flow on the paper's running
// example, 1D convolution (§3). Phase 1 trains a small differentiable
// surrogate of the accelerator cost model for the conv1d algorithm;
// Phase 2 gradient-searches the map space of a specific problem and prints
// the resulting mapping and its cost breakdown.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
	_ "mindmappings/internal/workload" // register the built-in workloads
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The accelerator of §5.1.2: 256 PEs, 64 KB private / 512 KB shared
	// buffers, 1 GHz; the 1D-conv datapath consumes 2 operands per MAC.
	accel := arch.Default(2)
	algo, err := loopnest.AlgorithmByName("conv1d")
	if err != nil {
		return err
	}
	mapper, err := core.NewMapper(algo, accel)
	if err != nil {
		return err
	}

	// Phase 1 (offline, once per algorithm): train the surrogate on
	// uniformly sampled mappings of representative problems.
	fmt.Println("phase 1: training the differentiable surrogate...")
	cfg := surrogate.TinyConfig()
	cfg.Samples = 4000
	start := time.Now()
	hist, err := mapper.TrainSurrogate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  trained in %v (train loss %.4f -> %.4f)\n",
		time.Since(start).Round(time.Millisecond), hist.TrainLoss[0], hist.FinalTrain())

	// Phase 2 (online, per problem): gradient search for an unseen
	// problem: 1D conv with input width 3000 and filter size 6 — a shape
	// the surrogate never saw during training.
	prob, err := loopnest.NewConv1DProblem("quickstart", 3000, 6)
	if err != nil {
		return err
	}
	pc, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: searching the map space of %s (|M| <= 10^%.1f)...\n",
		prob.String(), pc.Space.SizeLog10())
	res, err := mapper.FindMapping(pc, search.Budget{MaxEvals: 500}, 1)
	if err != nil {
		return err
	}

	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("\nbest mapping after %d surrogate steps (%v):\n  %s\n",
		res.Evals, res.Elapsed.Round(time.Millisecond), res.Best.String())
	fmt.Printf("\ncost:\n  EDP          %.4g J*s  (%.1fx the algorithmic minimum)\n", cost.EDP, norm)
	fmt.Printf("  total energy %.4g pJ\n", cost.TotalEnergyPJ)
	fmt.Printf("  cycles       %.4g (%.1f%% PE utilization)\n", cost.Cycles, 100*cost.Utilization)
	for l := arch.L1; l < arch.NumLevels; l++ {
		fmt.Printf("  %-5s accesses:", l)
		for t, tensor := range prob.Algo.Tensors {
			fmt.Printf("  %s %.4g", tensor.Name, cost.Accesses[l][t])
		}
		fmt.Println()
	}
	return nil
}
