// CNN example: map the ResNet Conv_4 layer (Table 1) onto the paper's
// 256-PE accelerator and compare Mind Mappings head-to-head against the
// black-box baselines under an iso-iteration budget — a single-problem
// slice of Figure 5.
//
// Run with: go run ./examples/cnnresnet
package main

import (
	"fmt"
	"log"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
	_ "mindmappings/internal/workload" // register the built-in workloads
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	algo, err := loopnest.AlgorithmByName("cnn-layer")
	if err != nil {
		return err
	}
	mapper, err := core.NewMapper(algo, arch.Default(2))
	if err != nil {
		return err
	}
	fmt.Println("training CNN-layer surrogate (one-time, reused for every layer)...")
	start := time.Now()
	if _, err := mapper.TrainSurrogate(surrogate.TinyConfig()); err != nil {
		return err
	}
	fmt.Printf("  done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// ResNet Conv_4 from Table 1: N=16, K=256, H=W=14, R=S=3, C=256.
	prob, err := loopnest.NewCNNProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3)
	if err != nil {
		return err
	}
	fmt.Printf("target problem: %s (%.3g MACs)\n\n", prob.String(), prob.MACs())

	mm, err := mapper.MindMappingsSearcher()
	if err != nil {
		return err
	}
	methods := append([]search.Searcher{mm}, core.Baselines(32)...)
	budget := search.Budget{MaxEvals: 600}

	fmt.Printf("%-8s %14s %10s %12s\n", "method", "EDP/minimum", "evals", "elapsed")
	best := ""
	bestEDP := 0.0
	for _, method := range methods {
		pc, err := mapper.NewProblemContext(prob)
		if err != nil {
			return err
		}
		res, err := mapper.SearchWith(method, pc, budget, 1)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %14.1f %10d %12v\n",
			method.Name(), res.BestEDP, res.Evals, res.Elapsed.Round(time.Millisecond))
		if best == "" || res.BestEDP < bestEDP {
			best, bestEDP = method.Name(), res.BestEDP
		}
	}
	fmt.Printf("\nwinner at this budget: %s (%.1fx the algorithmic minimum)\n", best, bestEDP)
	fmt.Println("note: Mind Mappings' evaluations are cheap surrogate queries; the")
	fmt.Println("baselines each consumed the same number of reference-cost-model queries.")
	return nil
}
