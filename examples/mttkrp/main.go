// MTTKRP example: search mappings for the tensor-algebra kernel
// O[i,j] = Σ_k Σ_l A[i,k,l]·B[k,j]·C[l,j] (paper Equation 4) on a 3-operand
// accelerator, and show how the surrogate's predicted meta-statistics
// (§4.1.3) line up with the reference cost model on the found mapping.
//
// Run with: go run ./examples/mttkrp
package main

import (
	"fmt"
	"log"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
	_ "mindmappings/internal/workload" // register the built-in workloads
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// MTTKRP PEs consume 3 operands per cycle (§5.1.2).
	algo, err := loopnest.AlgorithmByName("mttkrp")
	if err != nil {
		return err
	}
	mapper, err := core.NewMapper(algo, arch.Default(3))
	if err != nil {
		return err
	}
	fmt.Println("training MTTKRP surrogate...")
	start := time.Now()
	if _, err := mapper.TrainSurrogate(surrogate.TinyConfig()); err != nil {
		return err
	}
	fmt.Printf("  done in %v\n\n", time.Since(start).Round(time.Millisecond))

	// MTTKRP_0 from Table 1.
	prob, err := loopnest.NewMTTKRPProblem("MTTKRP_0", 128, 1024, 4096, 2048)
	if err != nil {
		return err
	}
	pc, err := mapper.NewProblemContext(prob)
	if err != nil {
		return err
	}
	res, err := mapper.FindMapping(pc, search.Budget{MaxEvals: 800}, 7)
	if err != nil {
		return err
	}
	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("problem  %s\n", prob.String())
	fmt.Printf("found    %s\n", res.Best.String())
	fmt.Printf("EDP      %.4g J*s (%.1fx algorithmic minimum) in %d surrogate steps\n\n",
		cost.EDP, norm, res.Evals)

	// Compare the surrogate's predicted meta-statistics against the
	// reference model for the found mapping (values in lower-bound units).
	sur := mapper.Surrogate()
	pred, err := sur.PredictMetaStats(pc.Space.Encode(&res.Best))
	if err != nil {
		return err
	}
	truth := cost.MetaStats()
	// Normalize the true vector the same way training targets are.
	bound := pc.Bound
	nt := len(prob.Algo.Tensors)
	for i := 0; i < 3*nt+1; i++ { // energies + total
		truth[i] /= bound.MinEnergyPJ
	}
	truth[3*nt+2] /= bound.MinCycles

	labels := make([]string, 0, len(truth))
	for l := arch.L1; l < arch.NumLevels; l++ {
		for _, t := range prob.Algo.Tensors {
			labels = append(labels, fmt.Sprintf("E(%s,%s)", l, t.Name))
		}
	}
	labels = append(labels, "E(total)", "utilization", "cycles")
	fmt.Printf("%-16s %14s %14s\n", "meta-statistic", "surrogate", "reference")
	for i, name := range labels {
		fmt.Printf("%-16s %14.2f %14.2f\n", name, pred[i], truth[i])
	}
	return nil
}
