// Costmodels: the pluggable cost-model layer in action. The paper treats
// the cost function f as an exchangeable component (§2.3); this example
// runs the same black-box search against two registered backends — the
// reference Timeloop-style reuse-analysis model ("timeloop") and the
// optimistic roofline/lower-bound model ("roofline") — then cross-scores
// each winner under the other backend, the head-to-head that motivates
// the costmodel seam (mapper conclusions shift with the cost model).
//
// Run with: go run ./examples/costmodels
package main

import (
	"fmt"
	"log"

	"mindmappings/internal/arch"
	"mindmappings/internal/costmodel"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/oracle"
	"mindmappings/internal/search"

	_ "mindmappings/internal/timeloop" // register the reference backend
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	accel := arch.Default(2)
	prob, err := loopnest.NewCNNProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3)
	if err != nil {
		return err
	}
	space, err := mapspace.New(accel, prob)
	if err != nil {
		return err
	}
	bound, err := oracle.Compute(accel, prob)
	if err != nil {
		return err
	}

	fmt.Printf("registered cost-model backends: %v\n\n", costmodel.Names())
	type winner struct {
		backend string
		best    mapspace.Mapping
	}
	var winners []winner
	for _, name := range costmodel.Names() {
		model, err := costmodel.New(name, accel, prob)
		if err != nil {
			return err
		}
		res, err := search.SimulatedAnnealing{}.Search(
			&search.Context{Space: space, Model: model, Bound: bound, Seed: 1},
			search.Budget{MaxEvals: 2000})
		if err != nil {
			return err
		}
		fmt.Printf("SA under %-9s %5d evals in %-8v best %.1fx minimum (by its own estimate)\n",
			name+":", res.Evals, res.Elapsed.Round(1e6), res.BestEDP)
		winners = append(winners, winner{backend: name, best: res.Best})
	}

	fmt.Println("\ncross-scoring each winner under every backend (normalized EDP):")
	for _, w := range winners {
		fmt.Printf("  winner found with %-9s", w.backend+":")
		for _, scorer := range costmodel.Names() {
			ev, err := costmodel.New(scorer, accel, prob)
			if err != nil {
				return err
			}
			cost, err := costmodel.Evaluate(nil, ev, &w.best)
			if err != nil {
				return err
			}
			fmt.Printf("  %s %.1fx", scorer, bound.NormalizeEDP(cost.EDP))
		}
		fmt.Println()
	}
	fmt.Println("\n(an optimistic backend's favorite mapping is not automatically the")
	fmt.Println(" reference model's favorite — that gap is why f is pluggable)")
	return nil
}
