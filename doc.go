// Package mindmappings is a from-scratch Go reproduction of "Mind Mappings:
// Enabling Efficient Algorithm-Accelerator Mapping Space Search" (ASPLOS
// 2021).
//
// Mind Mappings searches the space of mappings from a tensor algorithm (CNN
// layers, MTTKRP) to a flexible hardware accelerator. The mapping space is
// high dimensional, non-convex and non-smooth, so prior work relies on
// black-box optimizers. Mind Mappings instead trains a differentiable MLP
// surrogate of the accelerator cost function (Phase 1) and then runs
// projected gradient descent on the surrogate to find low energy-delay
// product mappings (Phase 2).
//
// The implementation lives under internal/ and is exposed through
// internal/core (the Mapper API), the runnable examples under examples/, and
// the command-line tools under cmd/. The root-level benchmarks in
// bench_test.go regenerate every table and figure of the paper's evaluation;
// see DESIGN.md for the per-experiment index and the layering notes.
//
// Workloads are a declarative layer: internal/workload compiles einsum
// index-expression specs ("O[m,n] += A[m,k] * B[k,n]"; halo subscripts
// like I[n,c,x+r,y+s] for convolutions) into validated loopnest.Algorithm
// values and keeps a by-name registry seeded with the paper's three
// workloads plus gemm, batched-matmul, depthwise-conv, and
// attention-score. Any registered workload — or an inline spec via the
// CLI's -einsum flag and the service's "einsum" request field — flows
// through the whole pipeline with zero per-algorithm code, and dataset or
// surrogate files are stamped with the workload's fingerprint so a model
// trained for one workload refuses to serve another. `mindmappings algos`
// lists the registry; see DESIGN.md §6 for the grammar and the
// fingerprint contract.
//
// The cost function f is a pluggable layer: internal/costmodel defines the
// Evaluator interface, a by-name backend registry, and composable
// middleware (eval counting, query-latency emulation, memoization,
// bounded-parallel batch fan-out) that any backend inherits. The reference
// Timeloop-style model (internal/timeloop) registers as "timeloop", the
// default; an optimistic roofline/lower-bound model registers as
// "roofline". Backends are selected end-to-end — `mindmappings search
// -model=roofline`, the service's "cost_model" request field (with
// per-backend eval counters in /v1/metrics), and `experiments -costmodel`
// — and no searcher, trainer, or service code names a concrete backend.
//
// Beyond the one-shot CLI, internal/service turns the library into a
// long-running concurrent mapping-search server (`mindmappings serve`): an
// HTTP JSON API backed by a worker pool, a registry that loads trained
// surrogates once and shares them across jobs (reloading raw files that
// are republished in place), and an LRU cache that memoizes
// reference-cost-model evaluations across jobs working on the same
// problem. See README.md for a quickstart and an example curl session.
//
// Phase 1 is online too: internal/trainer runs dataset generation →
// supervised training → publication as cancellable, resumable jobs on a
// worker pool separate from the search pool (POST /v1/train, `mindmappings
// train`), with per-epoch checkpoints and live phase/epoch/loss progress.
// Finished surrogates land in internal/modelstore — a content-addressed,
// versioned artifact store with atomic-rename commits, JSON manifests
// (workload/arch/cost-model fingerprints, training config, loss
// trajectories, warm-start lineage), an index keyed by workload
// fingerprint, and GC of superseded versions. Searches can name a model as
// "auto" to resolve the best stored artifact for their workload — or set
// train_on_miss to train one on the spot — and new training runs can
// warm-start from a stored parent of the same workload, reaching the cold
// run's final loss in a fraction of the epochs (the BENCH_search.json
// warm-vs-cold row). `mindmappings serve` drains searches, training jobs,
// and the HTTP listener gracefully on SIGINT/SIGTERM. See DESIGN.md §7 for
// the store layout, the manifest schema, and the auto-resolution and
// warm-start rules.
//
// The evaluation hot path is batched and allocation-free: surrogate
// queries run through batch GEMM kernels (surrogate.PredictBatch /
// GradientBatch over mat.MulNT / mat.MulNN) that are bit-identical to the
// scalar path, every cost-model backend evaluates into a reusable
// costmodel.Cost workspace with zero steady-state heap allocations,
// searchers evaluate candidate populations and neighborhoods as batches,
// and search.Context.Parallelism fans cost-model scoring across the
// costmodel parallel middleware's bounded worker pool without changing
// results. BENCH_search.json records the measured speedups; the README's
// Performance section documents the knobs and the benchmark commands.
package mindmappings
