module mindmappings

go 1.24
