// Command datagen generates and stores Phase-1 surrogate training sets
// (paper §4.1.1): uniform (optionally tail-enriched) samples of valid
// mappings across representative map spaces, each labeled with its
// reference-cost-model meta-statistics. Decoupling generation from training
// lets the expensive sampling pass be reused across training experiments
// (Figures 7a-7c all share one dataset).
//
// The target workload is any registered name (-algo; see `mindmappings
// algos`) or an inline einsum spec (-einsum). Inline specs are registered
// for the run so the saved dataset carries the spec itself: loading the
// file later recompiles the workload without any registry coordination.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/surrogate"
	"mindmappings/internal/workload"
)

func main() {
	algoName := flag.String("algo", "", "target workload (a registered name; see `mindmappings algos`; default cnn-layer)")
	einsum := flag.String("einsum", "", `inline workload spec, e.g. "O[m,n] += A[m,k] * B[k,n]" (instead of -algo)`)
	samples := flag.Int("samples", 20000, "number of (mapping, problem, cost) samples")
	problems := flag.Int("problems", 24, "number of representative problems to sample from")
	tailBias := flag.Float64("tailbias", 0.5, "fraction of samples drawn from the low-cost tail (0 = paper's pure uniform)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "dataset.bin", "output file")
	flag.Parse()

	if err := run(*algoName, *einsum, *samples, *problems, *tailBias, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(algoName, einsum string, samples, problems int, tailBias float64, seed int64, out string) error {
	if algoName != "" && einsum != "" {
		return fmt.Errorf("use -algo or -einsum, not both")
	}
	var algo *loopnest.Algorithm
	var err error
	switch {
	case einsum != "":
		// Register (not just compile) so Save finds the spec and stamps it
		// into the dataset file.
		algo, err = workload.RegisterSpec(workload.Spec{Expr: einsum})
	case algoName != "":
		algo, err = loopnest.AlgorithmByName(algoName)
	default:
		algo, err = loopnest.AlgorithmByName("cnn-layer")
	}
	if err != nil {
		return err
	}
	cfg := surrogate.SmallConfig()
	cfg.Samples = samples
	cfg.Problems = problems
	cfg.TailBias = tailBias
	cfg.Seed = seed

	start := time.Now()
	ds, err := surrogate.Generate(algo, arch.Default(len(algo.Tensors)-1), cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Save(f); err != nil {
		return err
	}
	fmt.Printf("generated %d samples for %s in %v -> %s (%d-wide inputs, %d-wide targets)\n",
		ds.Len(), algo.Name, time.Since(start).Round(time.Millisecond), out, len(ds.X[0]), len(ds.Y[0]))
	return nil
}
