package main

import (
	"os"
	"path/filepath"
	"testing"

	"mindmappings/internal/surrogate"
)

func TestRunGeneratesLoadableDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.bin")
	if err := run("conv1d", "", 200, 4, 0.5, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := surrogate.LoadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 200 {
		t.Fatalf("dataset has %d samples, want 200", ds.Len())
	}
	if ds.Algo.Name != "conv1d" {
		t.Fatalf("algorithm %q", ds.Algo.Name)
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	if err := run("no-such-workload", "", 100, 4, 0, 1, filepath.Join(t.TempDir(), "x.bin")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunRejectsBadEinsum(t *testing.T) {
	if err := run("", "O[x] +=", 100, 4, 0, 1, filepath.Join(t.TempDir(), "x.bin")); err == nil {
		t.Fatal("malformed einsum accepted")
	}
}

func TestRunRejectsUnwritablePath(t *testing.T) {
	if err := run("conv1d", "", 100, 4, 0, 1, "/nonexistent-dir/x.bin"); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
