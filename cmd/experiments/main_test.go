package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
	"time"

	"mindmappings/internal/experiments"
)

func TestParseFlagsDefaults(t *testing.T) {
	opts, fig, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if fig != "all" {
		t.Fatalf("fig %q", fig)
	}
	want := experiments.Defaults(false)
	if opts.Repeats != want.Repeats || opts.IsoIterations != want.IsoIterations || opts.Fast {
		t.Fatalf("defaults not preserved: %+v", opts)
	}
	if opts.Log == nil {
		t.Fatal("progress logging should default on")
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	opts, fig, err := parseFlags([]string{
		"-fig", "5", "-fast", "-repeats", "7", "-evals", "123",
		"-time", "2s", "-latency", "3ms", "-seed", "42", "-quiet",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if fig != "5" || !opts.Fast || opts.Repeats != 7 || opts.IsoIterations != 123 {
		t.Fatalf("overrides lost: fig=%q opts=%+v", fig, opts)
	}
	if opts.IsoTime != 2*time.Second || opts.QueryLatency != 3*time.Millisecond || opts.Seed != 42 {
		t.Fatalf("duration/seed overrides lost: %+v", opts)
	}
	if opts.Log != nil {
		t.Fatal("-quiet should disable progress logging")
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, _, err := parseFlags([]string{"-evals", "many"}, io.Discard); err == nil {
		t.Fatal("accepted a non-numeric -evals")
	}
	if _, _, err := parseFlags([]string{"stray"}, io.Discard); err == nil {
		t.Fatal("accepted positional arguments")
	}
}

func TestParseFlagsHelp(t *testing.T) {
	var out bytes.Buffer
	_, _, err := parseFlags([]string{"-h"}, &out)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(out.String(), "-fig") {
		t.Fatalf("usage text missing:\n%s", out.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	opts := experiments.Defaults(true)
	opts.Log = nil
	if err := run(experiments.New(opts), "fig42", io.Discard); err == nil {
		t.Fatal("unknown figure did not error")
	}
}

// TestRunTable1EndToEnd drives one real (cheap) experiment through the
// same path main uses.
func TestRunTable1EndToEnd(t *testing.T) {
	opts, fig, err := parseFlags([]string{"-fig", "t1", "-fast", "-quiet"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(experiments.New(opts), fig, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "ResNet_Conv_4") || !strings.Contains(got, "[t1 done in") {
		t.Fatalf("unexpected t1 output:\n%s", got)
	}
}
