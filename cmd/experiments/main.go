// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §2 for the index):
//
//	experiments -fig t1       Table 1 (target problems)
//	experiments -fig 3        Figure 3 (cost surface)
//	experiments -fig space    §5.1.3 map-space characterization
//	experiments -fig 5        Figure 5 (iso-iteration comparison)
//	experiments -fig 6        Figure 6 (iso-time comparison)
//	experiments -fig 7a       Figure 7a (surrogate loss curves)
//	experiments -fig 7b       Figure 7b (loss-function comparison)
//	experiments -fig 7c       Figure 7c (training-set-size sweep)
//	experiments -fig ablate   §4.1.3 output-representation ablation
//	experiments -fig step     §5.4.2 per-step cost
//	experiments -fig components  search-component ablation (extension)
//	experiments -fig tail     sampling ablation (extension)
//	experiments -fig generality  edge-accelerator generality check (extension)
//	experiments -fig costmodels  cost-model backend head-to-head (extension)
//	experiments -fig workloads   GA vs MM across every registered workload (extension)
//	experiments -fig atlas    atlas nearest-neighbor warm-start study (extension)
//	experiments -fig summary  Figures 5+6 headline ratios
//	experiments -fig all      everything above
//
// -fast shrinks budgets for a quick sanity pass; -repeats, -evals, -time,
// and -latency scale toward the paper's methodology. -costmodel evaluates
// every experiment against a different registered backend (e.g. roofline).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mindmappings/internal/experiments"
)

func main() {
	opts, fig, err := parseFlags(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		// The FlagSet already reported the problem to stderr.
		os.Exit(2)
	}
	if err := run(experiments.New(opts), fig, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// parseFlags resolves the command line into harness options plus the
// selected figure. log receives progress output unless -quiet is set (and
// flag-parsing diagnostics always).
func parseFlags(args []string, log io.Writer) (experiments.Options, string, error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(log)
	fig := fs.String("fig", "all", "which experiment to run (t1, 3, space, 5, 6, 7a, 7b, 7c, ablate, step, components, tail, generality, costmodels, workloads, atlas, summary, all)")
	fast := fs.Bool("fast", false, "reduced problem set and budgets")
	repeats := fs.Int("repeats", 0, "override runs averaged per method/problem (paper: 100)")
	evals := fs.Int("evals", 0, "override iso-iteration budget (paper: ~1000)")
	isoTime := fs.Duration("time", 0, "override iso-time budget")
	latency := fs.Duration("latency", 0, "override emulated reference-model query latency")
	costModel := fs.String("costmodel", "", "cost-model backend to evaluate against (timeloop, roofline)")
	seed := fs.Int64("seed", 0, "override random seed")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return experiments.Options{}, "", err
	}
	if fs.NArg() > 0 {
		err := fmt.Errorf("unexpected arguments %v", fs.Args())
		fmt.Fprintln(log, "experiments:", err)
		return experiments.Options{}, "", err
	}

	opts := experiments.Defaults(*fast)
	if *repeats > 0 {
		opts.Repeats = *repeats
	}
	if *evals > 0 {
		opts.IsoIterations = *evals
	}
	if *isoTime > 0 {
		opts.IsoTime = *isoTime
	}
	if *latency > 0 {
		opts.QueryLatency = *latency
	}
	opts.CostModel = *costModel
	if *seed != 0 {
		opts.Seed = *seed
	}
	if !*quiet {
		opts.Log = log
	}
	return opts, *fig, nil
}

func run(h *experiments.Harness, fig string, w io.Writer) error {
	runOne := func(name string) error {
		start := time.Now()
		var err error
		switch name {
		case "t1":
			err = h.Table1(w)
		case "3":
			_, err = h.CostSurface(w)
		case "space":
			_, err = h.SpaceStats(w)
		case "5":
			var cmp *experiments.Comparison
			if cmp, err = h.RunIsoIteration(); err == nil {
				cmp.Render(w)
			}
		case "6":
			var cmp *experiments.Comparison
			if cmp, err = h.RunIsoTime(); err == nil {
				cmp.Render(w)
			}
		case "7a":
			_, err = h.LossCurve(w, "cnn-layer")
		case "7b":
			_, err = h.LossFunctions(w, "cnn-layer")
		case "7c":
			_, err = h.DatasetSize(w, "cnn-layer")
		case "ablate":
			_, err = h.OutputReprAblation(w, "cnn-layer")
		case "step":
			_, err = h.PerStepCost(w)
		case "components":
			_, err = h.SearchComponents(w, "cnn-layer")
		case "tail":
			_, err = h.TailBiasAblation(w, "cnn-layer")
		case "generality":
			_, err = h.ArchGenerality(w)
		case "costmodels":
			_, err = h.CostModelHeadToHead(w)
		case "workloads":
			_, err = h.WorkloadSweep(w)
		case "atlas":
			_, err = h.AtlasSweep(w)
		case "summary":
			var iso, it *experiments.Comparison
			if iso, err = h.RunIsoIteration(); err != nil {
				return err
			}
			if it, err = h.RunIsoTime(); err != nil {
				return err
			}
			fmt.Fprintln(w, "== headline summary ==")
			fmt.Fprintf(w, "iso-iteration ratios vs MM: SA %.2fx GA %.2fx RL %.2fx (paper 1.40/1.76/1.29)\n",
				iso.RatiosVsMM["SA"], iso.RatiosVsMM["GA"], iso.RatiosVsMM["RL"])
			fmt.Fprintf(w, "iso-time     ratios vs MM: SA %.2fx GA %.2fx RL %.2fx (paper 3.16/4.19/2.90)\n",
				it.RatiosVsMM["SA"], it.RatiosVsMM["GA"], it.RatiosVsMM["RL"])
			fmt.Fprintf(w, "MM vs algorithmic minimum: %.2fx iso-iteration, %.2fx iso-time (paper 5.3x)\n",
				iso.MMvsOracle, it.MMvsOracle)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "\n[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if fig != "all" {
		return runOne(fig)
	}
	for _, name := range []string{"t1", "3", "space", "7a", "7b", "7c", "ablate", "step", "components", "tail", "generality", "costmodels", "workloads", "atlas", "5", "6", "summary"} {
		if err := runOne(name); err != nil {
			return err
		}
	}
	return nil
}
