package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mindmappings/internal/service"
)

// cmdDiag snapshots a live `mindmappings serve` instance into one
// self-contained tar.gz — the "attach this to the bug report" command. It
// pulls the operational status, both metrics views, the flight-recorder
// event ring, the job list with per-job traces for the most recent jobs,
// and (with -pprof, against a server started with -pprof) goroutine and
// heap profiles. Endpoints that fail are recorded in MANIFEST.json instead
// of aborting the bundle: a half-sick server is exactly when a diagnostics
// snapshot matters most.
func cmdDiag(args []string) error {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", `server base URL (":8080" and "host:8080" forms are accepted)`)
	out := fs.String("out", "", "output bundle path (default mindmappings-diag-<timestamp>.tar.gz)")
	jobN := fs.Int("jobs", 10, "include span traces for this many most-recent search jobs (0: none)")
	pprofOn := fs.Bool("pprof", false, "include goroutine and heap profiles (server must run with -pprof)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := normalizeBaseURL(*addr)
	path := *out
	if path == "" {
		path = "mindmappings-diag-" + time.Now().UTC().Format("20060102-150405") + ".tar.gz"
	}

	d := &diagCollector{
		client: &http.Client{Timeout: *timeout},
		base:   base,
	}
	// /v1/status is the one fetch that must succeed: if it fails there is
	// no server to diagnose and an empty bundle would only mislead.
	status, err := d.fetch("/v1/status")
	if err != nil {
		return fmt.Errorf("diag: %s is not answering /v1/status: %w", base, err)
	}
	d.add("status.json", status)
	d.collect("metrics.json", "/v1/metrics")
	d.collect("metrics.prom", "/metrics")
	d.collect("flightrecorder.json", "/debug/flightrecorder")
	d.collect("models.json", "/v1/models")
	if jobsRaw := d.collect("jobs.json", "/v1/jobs"); jobsRaw != nil && *jobN > 0 {
		for _, id := range recentJobIDs(jobsRaw, *jobN) {
			d.collect("traces/"+sanitizeName(id)+".json", "/v1/jobs/"+id+"/trace")
		}
	}
	if *pprofOn {
		d.collect("pprof/goroutine.txt", "/debug/pprof/goroutine?debug=2")
		d.collect("pprof/heap.pb.gz", "/debug/pprof/heap")
	}

	if err := d.writeBundle(path); err != nil {
		return fmt.Errorf("diag: %w", err)
	}
	fmt.Printf("wrote %s (%d files", path, len(d.files))
	if len(d.errors) > 0 {
		fmt.Printf(", %d endpoint(s) failed — see MANIFEST.json", len(d.errors))
	}
	fmt.Println(")")
	return nil
}

// normalizeBaseURL accepts ":8080", "host:8080", or a full URL.
func normalizeBaseURL(addr string) string {
	switch {
	case strings.HasPrefix(addr, "http://"), strings.HasPrefix(addr, "https://"):
	case strings.HasPrefix(addr, ":"):
		addr = "http://localhost" + addr
	default:
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// sanitizeName keeps archive member names flat and filesystem-safe.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, s)
}

// recentJobIDs extracts the newest n job IDs from the /v1/jobs body.
func recentJobIDs(raw []byte, n int) []string {
	var body struct {
		Jobs []service.Job `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return nil
	}
	sort.Slice(body.Jobs, func(i, j int) bool {
		return body.Jobs[i].Created.After(body.Jobs[j].Created)
	})
	if len(body.Jobs) > n {
		body.Jobs = body.Jobs[:n]
	}
	ids := make([]string, 0, len(body.Jobs))
	for _, j := range body.Jobs {
		ids = append(ids, j.ID)
	}
	return ids
}

type diagFile struct {
	name string
	data []byte
}

type diagCollector struct {
	client *http.Client
	base   string
	files  []diagFile
	errors map[string]string // endpoint path -> error
}

func (d *diagCollector) fetch(path string) ([]byte, error) {
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	return raw, nil
}

func (d *diagCollector) add(name string, data []byte) {
	d.files = append(d.files, diagFile{name: name, data: data})
}

// collect fetches one endpoint into the bundle, recording a failure in the
// manifest instead of propagating it. Returns the body (nil on failure).
func (d *diagCollector) collect(name, path string) []byte {
	raw, err := d.fetch(path)
	if err != nil {
		if d.errors == nil {
			d.errors = make(map[string]string)
		}
		d.errors[path] = err.Error()
		return nil
	}
	d.add(name, raw)
	return raw
}

// writeBundle renders the collected files plus MANIFEST.json as a tar.gz.
func (d *diagCollector) writeBundle(path string) error {
	manifest := struct {
		Tool     string            `json:"tool"`
		Captured time.Time         `json:"captured"`
		Server   string            `json:"server"`
		Files    []string          `json:"files"`
		Errors   map[string]string `json:"errors,omitempty"`
	}{
		Tool:     "mindmappings diag",
		Captured: time.Now().UTC(),
		Server:   d.base,
		Errors:   d.errors,
	}
	for _, f := range d.files {
		manifest.Files = append(manifest.Files, f.name)
	}
	mf, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	members := append([]diagFile{{name: "MANIFEST.json", data: mf}}, d.files...)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(f)
	tw := tar.NewWriter(gz)
	now := time.Now()
	for _, m := range members {
		hdr := &tar.Header{
			Name:    m.name,
			Mode:    0o644,
			Size:    int64(len(m.data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err == nil {
			_, err = tw.Write(m.data)
		}
		if err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	}
	for _, closer := range []func() error{tw.Close, gz.Close, f.Close} {
		if err := closer(); err != nil {
			os.Remove(path)
			return err
		}
	}
	return nil
}
