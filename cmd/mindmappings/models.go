package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"mindmappings/internal/modelstore"
)

// cmdModels lists, garbage-collects, or deletes artifacts in a versioned
// model store (the directory `mindmappings train -store` publishes into
// and `mindmappings serve -store` serves from).
func cmdModels(args []string) error {
	fs := flag.NewFlagSet("models", flag.ExitOnError)
	storeDir := fs.String("store", "", "artifact store directory (required)")
	gc := fs.Bool("gc", false, "drop superseded versions and crash debris")
	keep := fs.Int("keep", 2, "versions kept per workload with -gc")
	del := fs.String("delete", "", "delete one artifact by ID")
	verbose := fs.Bool("v", false, "also print fingerprints and loss histories")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("models: -store is required")
	}
	store, err := modelstore.Open(*storeDir)
	if err != nil {
		return err
	}
	if *del != "" {
		if err := store.Delete(*del); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", *del)
		return nil
	}
	if *gc {
		removed, err := store.GC(*keep)
		if err != nil {
			return err
		}
		fmt.Printf("gc: removed %d entries (keeping %d versions per workload)\n", len(removed), *keep)
		for _, id := range removed {
			fmt.Println("  " + id)
		}
		return nil
	}

	manifests := store.List()
	if len(manifests) == 0 {
		fmt.Printf("store %s is empty (train with `mindmappings train -store %s` or POST /v1/train)\n", *storeDir, *storeDir)
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tALGO\tVER\tEPOCHS\tSAMPLES\tTEST LOSS\tPARENT\tSIZE\tCREATED\tNAME")
	for _, m := range manifests {
		parent := m.Parent
		if parent == "" {
			parent = "-"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.4f\t%s\t%dK\t%s\t%s\n",
			m.ID, m.Algo, m.Version, m.Epochs, m.Samples, m.FinalTest,
			parent, m.SizeBytes/1024, m.Created.Format("2006-01-02 15:04"), m.Name)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *verbose {
		for _, m := range manifests {
			fmt.Printf("\n%s (%s v%d)\n", m.ID, m.Algo, m.Version)
			fmt.Printf("  workload fp   %s\n", m.AlgoFP)
			fmt.Printf("  arch fp       %s\n", m.ArchFP)
			fmt.Printf("  cost model    %s (%.12s…)\n", m.CostModel, m.CostModelFP)
			fmt.Printf("  hidden sizes  %v, seed %d, %d problems\n", m.HiddenSizes, m.Seed, m.Problems)
			fmt.Printf("  train loss    %v\n", m.TrainLoss)
			fmt.Printf("  test loss     %v\n", m.TestLoss)
		}
	}
	return nil
}
