package main

import (
	"bytes"
	"strings"
	"testing"

	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
)

func TestSurrogateConfigNames(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		if _, err := surrogateConfig(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := surrogateConfig("huge"); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestNewMapperByAlgo(t *testing.T) {
	for _, name := range []string{"cnn-layer", "mttkrp", "conv1d"} {
		mp, err := newMapper(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mp.Algo.Name != name {
			t.Fatalf("mapper algo %q, want %q", mp.Algo.Name, name)
		}
	}
	if _, err := newMapper("gemm"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestResolveProblemTable1(t *testing.T) {
	p, err := resolveProblem("cnn-layer", "ResNet_Conv_4", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[loopnest.CNNDimK] != 256 {
		t.Fatalf("resolved wrong problem: %v", p.Shape)
	}
	if _, err := resolveProblem("mttkrp", "ResNet_Conv_4", ""); err == nil {
		t.Fatal("CNN problem resolved for MTTKRP algorithm")
	}
	if _, err := resolveProblem("cnn-layer", "NoSuchLayer", ""); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestResolveProblemShapes(t *testing.T) {
	p, err := resolveProblem("cnn-layer", "", "1, 8, 4, 14, 14, 3, 3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[loopnest.CNNDimX] != 12 {
		t.Fatalf("X = %d, want 12", p.Shape[loopnest.CNNDimX])
	}
	if _, err := resolveProblem("cnn-layer", "", "1,2,3"); err == nil {
		t.Fatal("short CNN shape accepted")
	}
	if _, err := resolveProblem("mttkrp", "", "64,128,256,128"); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveProblem("conv1d", "", "1024,5"); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveProblem("conv1d", "", "1024,x"); err == nil {
		t.Fatal("non-numeric shape accepted")
	}
	if _, err := resolveProblem("cnn-layer", "", ""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := resolveProblem("gemm", "", "2,2"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestWriteSurface(t *testing.T) {
	prob, err := resolveProblem("cnn-layer", "", "1,8,8,6,6,3,3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSurface(&buf, prob, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ruggedness") {
		t.Fatalf("surface output missing stats footer:\n%s", buf.String())
	}
}

func TestWriteSurfaceRejectsNonCNN(t *testing.T) {
	prob, err := resolveProblem("mttkrp", "", "64,128,256,128")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSurface(&bytes.Buffer{}, prob, 1); err == nil {
		t.Fatal("non-CNN surface accepted")
	}
}

func TestParseObjective(t *testing.T) {
	for name, want := range map[string]string{
		"edp": "EDP", "ed2p": "ED2P", "energy": "energy", "delay": "delay", "EDP": "EDP",
	} {
		o, err := search.ParseObjective(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.String() != want {
			t.Fatalf("%s resolved to %s", name, o)
		}
	}
	if _, err := search.ParseObjective("latency"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}
