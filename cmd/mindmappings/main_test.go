package main

import (
	"bytes"
	"strings"
	"testing"

	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/trainer"
)

func TestSurrogateConfigNames(t *testing.T) {
	// The CLI resolves -config through the trainer pipeline's registry.
	for _, name := range []string{"", "tiny", "small", "paper"} {
		if _, err := trainer.NamedConfig(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := trainer.NamedConfig("huge"); err == nil {
		t.Fatal("unknown config accepted")
	}
}

func TestNewMapperByAlgo(t *testing.T) {
	for _, name := range []string{"cnn-layer", "mttkrp", "conv1d", "gemm", "batched-matmul", "depthwise-conv", "attention-score"} {
		mp, err := newMapper(name, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mp.Algo.Name != name {
			t.Fatalf("mapper algo %q, want %q", mp.Algo.Name, name)
		}
	}
	if _, err := newMapper("no-such-workload", ""); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNewMapperInlineEinsum(t *testing.T) {
	mp, err := newMapper("", "O[m,n] += A[m,k] * B[k,n]")
	if err != nil {
		t.Fatal(err)
	}
	if mp.Algo.NumDims() != 3 || len(mp.Algo.Tensors) != 3 {
		t.Fatalf("inline algo: %d dims, %d tensors", mp.Algo.NumDims(), len(mp.Algo.Tensors))
	}
	if _, err := newMapper("mttkrp", "O[m,n] += A[m,k] * B[k,n]"); err == nil {
		t.Fatal("accepted both -algo and -einsum")
	}
	if _, err := newMapper("", "O[m,n] +="); err == nil {
		t.Fatal("accepted malformed einsum")
	}
}

func TestResolveProblemTable1(t *testing.T) {
	cnn := loopnest.MustAlgorithm("cnn-layer")
	mtt := loopnest.MustAlgorithm("mttkrp")
	p, err := resolveProblem(cnn, "ResNet_Conv_4", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[loopnest.CNNDimK] != 256 {
		t.Fatalf("resolved wrong problem: %v", p.Shape)
	}
	if _, err := resolveProblem(mtt, "ResNet_Conv_4", ""); err == nil {
		t.Fatal("CNN problem resolved for MTTKRP algorithm")
	}
	if _, err := resolveProblem(cnn, "NoSuchLayer", ""); err == nil {
		t.Fatal("unknown problem accepted")
	}
}

func TestResolveProblemShapes(t *testing.T) {
	cnn := loopnest.MustAlgorithm("cnn-layer")
	// Canonical dimension order: sizes are the loop extents themselves.
	p, err := resolveProblem(cnn, "", "1, 8, 4, 12, 12, 3, 3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[loopnest.CNNDimX] != 12 {
		t.Fatalf("X = %d, want 12", p.Shape[loopnest.CNNDimX])
	}
	if _, err := resolveProblem(cnn, "", "1,2,3"); err == nil {
		t.Fatal("short CNN shape accepted")
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("mttkrp"), "", "64,128,256,128"); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("conv1d"), "", "1024,5"); err != nil {
		t.Fatal(err)
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("conv1d"), "", "1024,x"); err == nil {
		t.Fatal("non-numeric shape accepted")
	}
	if _, err := resolveProblem(cnn, "", ""); err == nil {
		t.Fatal("empty spec accepted")
	}
	// Named name=size pairs work in any order.
	g, err := resolveProblem(loopnest.MustAlgorithm("gemm"), "", "K=128,M=64,N=32")
	if err != nil {
		t.Fatal(err)
	}
	if g.MACs() != 64*32*128 {
		t.Fatalf("gemm MACs = %v", g.MACs())
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("gemm"), "", "M=64,N=32"); err == nil {
		t.Fatal("incomplete dims accepted")
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("gemm"), "", "M=64,N=32,Q=9,K=4"); err == nil {
		t.Fatal("unknown dim name accepted")
	}
	if _, err := resolveProblem(loopnest.MustAlgorithm("gemm"), "", "M=64,M=128,N=32,K=4"); err == nil {
		t.Fatal("duplicated dim name accepted")
	}
}

func TestWriteSurface(t *testing.T) {
	prob, err := resolveProblem(loopnest.MustAlgorithm("cnn-layer"), "", "1,8,8,4,4,3,3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeSurface(&buf, prob, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ruggedness") {
		t.Fatalf("surface output missing stats footer:\n%s", buf.String())
	}
}

func TestWriteSurfaceRejectsNonCNN(t *testing.T) {
	prob, err := resolveProblem(loopnest.MustAlgorithm("mttkrp"), "", "64,128,256,128")
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSurface(&bytes.Buffer{}, prob, 1); err == nil {
		t.Fatal("non-CNN surface accepted")
	}
}

func TestParseObjective(t *testing.T) {
	for name, want := range map[string]string{
		"edp": "EDP", "ed2p": "ED2P", "energy": "energy", "delay": "delay", "EDP": "EDP",
	} {
		o, err := search.ParseObjective(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.String() != want {
			t.Fatalf("%s resolved to %s", name, o)
		}
	}
	if _, err := search.ParseObjective("latency"); err == nil {
		t.Fatal("unknown objective accepted")
	}
}
