package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/nn"
	"mindmappings/internal/stats"
	"mindmappings/internal/surrogate"
)

// TestServeAtlasSmoke is the CI smoke for the mapping atlas, end to end
// across a process boundary: `atlas build` sweeps a 4-point shape grid
// offline, a fresh serve then opens the same directory, answers the exact
// grid shape from the atlas without running a search, and warm-starts an
// mm search for an unseen nearby shape — both observed through the
// /metrics counters, not just the response bodies.
func TestServeAtlasSmoke(t *testing.T) {
	dir := t.TempDir()
	atlasDir := filepath.Join(dir, "atlas")

	// Offline sweep: 4 conv1d grid points, black-box searcher so no
	// surrogate is needed.
	if err := cmdAtlas([]string{
		"build",
		"-algo", "conv1d",
		"-grid", "X=256|512|1024|1536,R=5",
		"-atlas", atlasDir,
		"-searcher", "ga",
		"-evals", "80",
	}); err != nil {
		t.Fatal(err)
	}

	// The warm-start path needs an mm job, which needs a surrogate in the
	// registry; an untrained one exercises the same serving path.
	algo := loopnest.MustAlgorithm("conv1d")
	prob, err := algo.NewProblem("custom", []int{1024, 5})
	if err != nil {
		t.Fatal(err)
	}
	space, err := mapspace.New(arch.Default(len(algo.Tensors)-1), prob)
	if err != nil {
		t.Fatal(err)
	}
	inDim := space.VectorLen()
	outDim := int(arch.NumLevels)*len(algo.Tensors) + 3
	net1, err := nn.NewMLP([]int{inDim, 16, 16, outDim}, nn.ReLU{}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	ident := func(d int) *stats.Normalizer {
		n := &stats.Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
		for i := range n.Std {
			n.Std[i] = 1
		}
		return n
	}
	sur := &surrogate.Surrogate{
		AlgoName:   algo.Name,
		Net:        net1,
		InNorm:     ident(inDim),
		OutNorm:    ident(outDim),
		Mode:       surrogate.OutputMetaStats,
		LogOutputs: true,
		NumTensors: len(algo.Tensors),
	}
	var blob bytes.Buffer
	if err := sur.Save(&blob); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "conv1d.surrogate"), blob.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-models", dir, "-atlas", atlasDir,
			"-workers", "2", "-trainworkers", "1", "-quiet",
			"-grace", "5s",
		})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	submit := func(body string) (status string, source string, id string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
		}
		var job struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Result *struct {
				Source string `json:"source"`
			} `json:"result"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("%v in %q", err, raw)
		}
		if job.Result != nil {
			source = job.Result.Source
		}
		return job.Status, source, job.ID
	}
	await := func(id string) {
		t.Helper()
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var job struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if job.Status == "done" {
				return
			}
			if job.Status == "failed" || job.Status == "cancelled" {
				t.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, job.Status)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// Exact grid shape: answered from the atlas, already terminal at submit.
	status, source, _ := submit(`{"algo":"conv1d","shape":[1024,5],"searcher":"ga","evals":80,"seed":1}`)
	if status != "done" || source != "atlas" {
		t.Fatalf("repeat shape not served from atlas: status=%q source=%q", status, source)
	}
	// Unseen nearby shape, mm searcher: runs a real (warm-started) search.
	_, _, id := submit(fmt.Sprintf(`{"algo":"conv1d","shape":[768,5],"searcher":"mm",
		"model":"conv1d.surrogate","evals":%d,"seed":2}`, 60))
	await(id)

	// Both events must be visible to Prometheus.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// atlas_entries is 5: the 4 built grid points plus the warm-started
	// job's own write-back.
	for _, want := range []string{"atlas_hits_total 1", "atlas_neighbor_total 1", "atlas_writebacks_total 1", "atlas_entries 5"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// And on the JSON twin.
	jresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Atlas *struct {
			Hits      uint64 `json:"hits"`
			Neighbors uint64 `json:"neighbors"`
			Entries   int    `json:"entries"`
		} `json:"atlas"`
	}
	err = json.NewDecoder(jresp.Body).Decode(&m)
	jresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Atlas == nil || m.Atlas.Hits != 1 || m.Atlas.Neighbors != 1 {
		t.Fatalf("/v1/metrics atlas section: %+v", m.Atlas)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}
