package main

import (
	"os"
	"path/filepath"
	"testing"
)

// End-to-end CLI tests: train a tiny surrogate, then drive search, compare
// and surface through the real command functions.

func trainTinySurrogate(t *testing.T) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "conv1d.surrogate")
	err := cmdTrain([]string{
		"-algo", "conv1d",
		"-config", "tiny",
		"-samples", "800",
		"-epochs", "4",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("surrogate file missing: %v", err)
	}
	return out
}

func TestCmdTrainSearchCompare(t *testing.T) {
	sur := trainTinySurrogate(t)

	if err := cmdSearch([]string{
		"-algo", "conv1d",
		"-surrogate", sur,
		"-shape", "1024,5",
		"-evals", "60",
	}); err != nil {
		t.Fatalf("search: %v", err)
	}

	if err := cmdCompare([]string{
		"-algo", "conv1d",
		"-surrogate", sur,
		"-shape", "1024,5",
		"-evals", "40",
		"-rlhidden", "16",
	}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

func TestCmdSearchErrors(t *testing.T) {
	sur := trainTinySurrogate(t)
	if err := cmdSearch([]string{"-algo", "conv1d", "-surrogate", sur}); err == nil {
		t.Fatal("search without problem accepted")
	}
	if err := cmdSearch([]string{"-algo", "conv1d", "-surrogate", "/no/such/file", "-shape", "64,3"}); err == nil {
		t.Fatal("missing surrogate file accepted")
	}
	// Wrong algorithm for the stored surrogate.
	if err := cmdSearch([]string{"-algo", "cnn-layer", "-surrogate", sur, "-problem", "ResNet_Conv_4"}); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}
}

func TestCmdTrainErrors(t *testing.T) {
	if err := cmdTrain([]string{"-algo", "gemm"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := cmdTrain([]string{"-algo", "conv1d", "-config", "nope"}); err == nil {
		t.Fatal("unknown config accepted")
	}
	if err := cmdTrain([]string{
		"-algo", "conv1d", "-config", "tiny",
		"-samples", "500", "-epochs", "2",
		"-out", "/no/such/dir/x.bin",
	}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestCmdSurface(t *testing.T) {
	out := filepath.Join(t.TempDir(), "surface.dat")
	if err := cmdSurface([]string{"-problem", "AlexNet_Conv_4", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty surface output")
	}
}

func TestCmdSurfaceErrors(t *testing.T) {
	if err := cmdSurface([]string{"-problem", "MTTKRP_0"}); err == nil {
		t.Fatal("non-CNN problem accepted")
	}
	if err := cmdSurface([]string{"-problem", "AlexNet_Conv_4", "-out", "/no/such/dir/s.dat"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
