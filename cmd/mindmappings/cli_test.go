package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mindmappings/internal/modelstore"
	"mindmappings/internal/search"
)

// End-to-end CLI tests: train a tiny surrogate, then drive search, compare
// and surface through the real command functions.

func trainTinySurrogate(t *testing.T) string {
	t.Helper()
	out := filepath.Join(t.TempDir(), "conv1d.surrogate")
	err := cmdTrain([]string{
		"-algo", "conv1d",
		"-config", "tiny",
		"-samples", "800",
		"-epochs", "4",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("surrogate file missing: %v", err)
	}
	return out
}

func TestCmdTrainSearchCompare(t *testing.T) {
	sur := trainTinySurrogate(t)

	if err := cmdSearch([]string{
		"-algo", "conv1d",
		"-surrogate", sur,
		"-shape", "1024,5",
		"-evals", "60",
		"-progress",
	}); err != nil {
		t.Fatalf("search: %v", err)
	}

	if err := cmdCompare([]string{
		"-algo", "conv1d",
		"-surrogate", sur,
		"-shape", "1024,5",
		"-evals", "40",
		"-rlhidden", "16",
	}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

// TestCmdGEMMEndToEnd: the gemm workload (registry-only, no hand-coded
// constructor ever existed for it) flows train → search → compare through
// the real command functions.
func TestCmdGEMMEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gemm.surrogate")
	if err := cmdTrain([]string{
		"-algo", "gemm", "-config", "tiny",
		"-samples", "800", "-epochs", "4",
		"-out", out,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdSearch([]string{
		"-algo", "gemm", "-surrogate", out,
		"-shape", "M=64,K=64,N=64", "-evals", "60",
	}); err != nil {
		t.Fatalf("search: %v", err)
	}
	if err := cmdCompare([]string{
		"-algo", "gemm", "-surrogate", out,
		"-shape", "64,64,64", "-evals", "40", "-rlhidden", "16",
	}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

// TestCmdInlineEinsumEndToEnd: a workload defined entirely on the command
// line flows train → search → compare; the surrogate's derived name makes
// the train/search pair line up without a registry entry.
func TestCmdInlineEinsumEndToEnd(t *testing.T) {
	const spec = "Out[a,b] += L[a,c] * R[c,b]"
	out := filepath.Join(t.TempDir(), "inline.surrogate")
	if err := cmdTrain([]string{
		"-einsum", spec, "-config", "tiny",
		"-samples", "800", "-epochs", "4",
		"-out", out,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdSearch([]string{
		"-einsum", spec, "-surrogate", out,
		"-shape", "a=32,b=32,c=32", "-evals", "60",
	}); err != nil {
		t.Fatalf("search: %v", err)
	}
	if err := cmdCompare([]string{
		"-einsum", spec, "-surrogate", out,
		"-shape", "32,32,32", "-evals", "40", "-rlhidden", "16",
	}); err != nil {
		t.Fatalf("compare: %v", err)
	}
	// A different expression must be refused for this surrogate.
	if err := cmdSearch([]string{
		"-einsum", "Out[a,b] += L[a,q] * R[q,b] * S[a,b]", "-surrogate", out,
		"-shape", "a=32,b=32,q=32", "-evals", "10",
	}); err == nil {
		t.Fatal("surrogate accepted for a different einsum")
	}
}

// TestProgressPrinter pins the -progress hook contract: improvements
// always print, non-improvements inside the throttle window are dropped,
// and the line carries eval index, best cost, and throughput.
func TestProgressPrinter(t *testing.T) {
	var buf bytes.Buffer
	hook := progressPrinter(&buf)
	hook(search.Progress{Eval: 10, Best: 4.5, Elapsed: 10 * time.Millisecond, Improved: true})
	hook(search.Progress{Eval: 20, Best: 4.5, Elapsed: 20 * time.Millisecond}) // throttled
	hook(search.Progress{Eval: 30, Best: 2.5, Elapsed: 30 * time.Millisecond, Improved: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines (throttled middle), got %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "*") || !strings.Contains(lines[0], "eval       10") {
		t.Fatalf("first line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.5") || !strings.Contains(lines[1], "evals/s") {
		t.Fatalf("second line: %q", lines[1])
	}
}

func TestCmdAlgosListsRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := writeAlgos(&buf, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cnn-layer", "gemm", "attention-score", "einsum", "fingerprint", "-shape"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("algos output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestCmdSearchErrors(t *testing.T) {
	sur := trainTinySurrogate(t)
	if err := cmdSearch([]string{"-algo", "conv1d", "-surrogate", sur}); err == nil {
		t.Fatal("search without problem accepted")
	}
	if err := cmdSearch([]string{"-algo", "conv1d", "-surrogate", "/no/such/file", "-shape", "64,3"}); err == nil {
		t.Fatal("missing surrogate file accepted")
	}
	// Wrong algorithm for the stored surrogate.
	if err := cmdSearch([]string{"-algo", "cnn-layer", "-surrogate", sur, "-problem", "ResNet_Conv_4"}); err == nil {
		t.Fatal("algorithm mismatch accepted")
	}
}

func TestCmdTrainErrors(t *testing.T) {
	if err := cmdTrain([]string{"-algo", "no-such-workload"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := cmdTrain([]string{"-algo", "conv1d", "-config", "nope"}); err == nil {
		t.Fatal("unknown config accepted")
	}
	if err := cmdTrain([]string{
		"-algo", "conv1d", "-config", "tiny",
		"-samples", "500", "-epochs", "2",
		"-out", "/no/such/dir/x.bin",
	}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestCmdSurface(t *testing.T) {
	out := filepath.Join(t.TempDir(), "surface.dat")
	if err := cmdSurface([]string{"-problem", "AlexNet_Conv_4", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty surface output")
	}
}

func TestCmdSurfaceErrors(t *testing.T) {
	if err := cmdSurface([]string{"-problem", "MTTKRP_0"}); err == nil {
		t.Fatal("non-CNN problem accepted")
	}
	if err := cmdSurface([]string{"-problem", "AlexNet_Conv_4", "-out", "/no/such/dir/s.dat"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

// TestCmdTrainStoreAndModels drives the versioned-store workflow through
// the real command functions: train publishes into a store, a second run
// warm-starts from the first, `models` lists both, and gc trims to one.
func TestCmdTrainStoreAndModels(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	train := func(seed string, warm string) {
		t.Helper()
		args := []string{
			"-algo", "conv1d",
			"-config", "tiny",
			"-samples", "500",
			"-epochs", "3",
			"-seed", seed,
			"-store", storeDir,
			"-out", "", // store only
		}
		if warm != "" {
			args = append(args, "-warm", warm)
		}
		if err := cmdTrain(args); err != nil {
			t.Fatal(err)
		}
	}
	train("1", "")
	train("2", "auto")

	st, err := modelstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	manifests := st.List()
	if len(manifests) != 2 {
		t.Fatalf("store has %d artifacts, want 2", len(manifests))
	}
	if manifests[1].Parent != manifests[0].ID {
		t.Fatalf("second run did not warm-start from the first: %+v", manifests[1])
	}

	if err := cmdModels([]string{"-store", storeDir, "-v"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdModels([]string{"-store", storeDir, "-gc", "-keep", "1"}); err != nil {
		t.Fatal(err)
	}
	st2, err := modelstore.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	left := st2.List()
	if len(left) != 1 || left[0].Version != 2 {
		t.Fatalf("after gc: %+v", left)
	}
	if err := cmdModels([]string{"-store", storeDir, "-delete", left[0].ID}); err != nil {
		t.Fatal(err)
	}
	if err := cmdModels([]string{"-store", storeDir}); err != nil {
		t.Fatal(err) // empty listing still succeeds
	}
	if err := cmdModels([]string{}); err == nil {
		t.Fatal("models without -store succeeded")
	}
}

// TestCmdTrainOutFileStillSearchable pins back-compat: the -out file the
// pipeline-backed train writes is byte-for-byte a loadable surrogate.
func TestCmdTrainNothingToProduce(t *testing.T) {
	if err := cmdTrain([]string{"-algo", "conv1d", "-out", ""}); err == nil {
		t.Fatal("train with neither -out nor -store succeeded")
	}
}
