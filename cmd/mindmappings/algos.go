package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mindmappings/internal/workload"
)

// cmdAlgos lists the registered workloads: canonical dimensions, tensors
// with their subscripts, an example dims map, and the fingerprint stamped
// into datasets and surrogates. The listing is generated from the workload
// registry, so it always matches what the binary can actually run.
func cmdAlgos(args []string) error {
	fs := flag.NewFlagSet("algos", flag.ExitOnError)
	verbose := fs.Bool("v", false, "also print sample spaces and fingerprints")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return writeAlgos(os.Stdout, *verbose)
}

func writeAlgos(w io.Writer, verbose bool) error {
	infos := workload.List()
	if len(infos) == 0 {
		return fmt.Errorf("no workloads registered")
	}
	for i, info := range infos {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s\n", info.Name)
		fmt.Fprintf(w, "  einsum   %s\n", info.Expr)
		fmt.Fprintf(w, "  dims     %s\n", strings.Join(info.Dims, ","))
		fmt.Fprintf(w, "  tensors  %s\n", strings.Join(info.Tensors, "  "))
		fmt.Fprintf(w, "  example  -shape %s\n", exampleShape(info))
		if verbose {
			algo, err := workload.Algorithm(info.Name)
			if err != nil {
				return err
			}
			for d, dn := range algo.DimNames {
				fmt.Fprintf(w, "  sample %-4s %v\n", dn, algo.SampleSpace[d])
			}
			fmt.Fprintf(w, "  fingerprint %s\n", info.Fingerprint)
		}
	}
	return nil
}

// exampleShape renders an Info's example dims map as a -shape argument in
// canonical dimension order (ExampleDims always carries exactly one entry
// per canonical dimension).
func exampleShape(info workload.Info) string {
	parts := make([]string, 0, len(info.Dims))
	for _, d := range info.Dims {
		parts = append(parts, fmt.Sprintf("%s=%d", d, info.ExampleDims[d]))
	}
	return strings.Join(parts, ",")
}
