package main

import (
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"mindmappings/internal/obs"
)

// TestServeBinaryMetricsScrape is the CI smoke for the scrape surface: it
// boots the real serve command (worker pools, store, signal handling — the
// whole process wiring, not a bare handler), scrapes /metrics like a
// Prometheus server would, fails on any malformed exposition line, and
// then shuts the server down via SIGTERM the way an orchestrator does.
func TestServeBinaryMetricsScrape(t *testing.T) {
	// Reserve a port; the tiny close-to-listen window is an acceptable
	// race for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr,
			"-models", dir,
			"-workers", "1",
			"-trainworkers", "1",
			"-quiet",
			"-grace", "5s",
		})
	}()

	base := "http://" + addr
	var resp *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(base + "/metrics")
		if err == nil {
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	if samples == 0 {
		t.Fatal("empty exposition")
	}

	// The JSON twin must stay mounted alongside the Prometheus surface.
	jresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", jresp.StatusCode)
	}

	// pprof is opt-in and was not requested.
	presp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without -pprof")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServePprofFlag pins that -pprof mounts the profiler endpoints.
func TestServePprofFlag(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-models", t.TempDir(),
			"-workers", "1", "-trainworkers", "1", "-quiet", "-pprof",
			"-grace", "5s",
		})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/pprof/cmdline")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /debug/pprof/cmdline: %d", resp.StatusCode)
			}
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}
