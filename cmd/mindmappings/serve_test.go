package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/mapspace"
	"mindmappings/internal/nn"
	"mindmappings/internal/obs"
	"mindmappings/internal/stats"
	"mindmappings/internal/surrogate"
)

// TestServeBinaryMetricsScrape is the CI smoke for the scrape surface: it
// boots the real serve command (worker pools, store, signal handling — the
// whole process wiring, not a bare handler), scrapes /metrics like a
// Prometheus server would, fails on any malformed exposition line, and
// then shuts the server down via SIGTERM the way an orchestrator does.
func TestServeBinaryMetricsScrape(t *testing.T) {
	// Reserve a port; the tiny close-to-listen window is an acceptable
	// race for a smoke test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr,
			"-models", dir,
			"-workers", "1",
			"-trainworkers", "1",
			"-quiet",
			"-grace", "5s",
		})
	}()

	base := "http://" + addr
	var resp *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(base + "/metrics")
		if err == nil {
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	if samples == 0 {
		t.Fatal("empty exposition")
	}

	// The JSON twin must stay mounted alongside the Prometheus surface.
	jresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: %d", jresp.StatusCode)
	}

	// pprof is opt-in and was not requested.
	presp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without -pprof")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServePprofFlag pins that -pprof mounts the profiler endpoints.
func TestServePprofFlag(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-models", t.TempDir(),
			"-workers", "1", "-trainworkers", "1", "-quiet", "-pprof",
			"-grace", "5s",
		})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/debug/pprof/cmdline")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /debug/pprof/cmdline: %d", resp.StatusCode)
			}
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServeBatchWindowSearch is the CI smoke for cross-request inference
// batching: it boots the real serve command with -batch-window armed,
// submits concurrent mm search jobs that share one registry surrogate, and
// asserts they all complete and that the batcher's flush telemetry shows
// up on /metrics — proof the queries actually flowed through the
// coalescing path, not just that the flag parsed.
func TestServeBatchWindowSearch(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	// An untrained conv1d surrogate: random weights change the landscape,
	// not the serving path, and skipping training keeps the smoke fast.
	algo := loopnest.MustAlgorithm("conv1d")
	prob, err := algo.NewProblem("custom", []int{1024, 5})
	if err != nil {
		t.Fatal(err)
	}
	space, err := mapspace.New(arch.Default(len(algo.Tensors)-1), prob)
	if err != nil {
		t.Fatal(err)
	}
	inDim := space.VectorLen()
	outDim := int(arch.NumLevels)*len(algo.Tensors) + 3
	net1, err := nn.NewMLP([]int{inDim, 16, 16, outDim}, nn.ReLU{}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	ident := func(d int) *stats.Normalizer {
		n := &stats.Normalizer{Mean: make([]float64, d), Std: make([]float64, d)}
		for i := range n.Std {
			n.Std[i] = 1
		}
		return n
	}
	sur := &surrogate.Surrogate{
		AlgoName:   algo.Name,
		Net:        net1,
		InNorm:     ident(inDim),
		OutNorm:    ident(outDim),
		Mode:       surrogate.OutputMetaStats,
		LogOutputs: true,
		NumTensors: len(algo.Tensors),
	}
	var blob bytes.Buffer
	if err := sur.Save(&blob); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "conv1d.surrogate"), blob.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-models", dir,
			"-workers", "4", "-trainworkers", "1", "-quiet",
			"-batch-window", "300us", "-batch-max", "32",
			"-grace", "5s",
		})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	const jobs = 4
	ids := make([]string, jobs)
	for i := range ids {
		body := fmt.Sprintf(`{"algo":"conv1d","shape":[1024,5],"searcher":"mm",
			"model":"conv1d.surrogate","evals":60,"seed":%d}`, i+1)
		resp, err := http.Post(base+"/v1/search", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, raw)
		}
		var job struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("submit %d: %v in %q", i, err, raw)
		}
		ids[i] = job.ID
	}
	for _, id := range ids {
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var job struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if job.Status == "done" {
				break
			}
			if job.Status == "failed" || job.Status == "cancelled" {
				t.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, job.Status)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `infer_batch_flushes_total{model="conv1d.surrogate"`) {
		t.Fatal("batcher flush telemetry missing from /metrics — queries did not flow through the coalescing path")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}
