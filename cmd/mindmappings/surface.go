package main

import (
	"io"

	"mindmappings/internal/experiments"
	"mindmappings/internal/loopnest"
)

// writeSurface dumps the Figure-3 cost surface for a CNN problem.
func writeSurface(w io.Writer, prob loopnest.Problem, seed int64) error {
	_, err := experiments.CostSurfaceFor(w, prob, seed)
	return err
}
