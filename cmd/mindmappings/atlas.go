package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"mindmappings/internal/arch"
	"mindmappings/internal/atlas"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/modelstore"
	"mindmappings/internal/service"
)

// cmdAtlas manages a precomputed mapping atlas: `atlas build` sweeps a
// workload×shape grid offline and publishes the solved mappings;
// otherwise it lists, garbage-collects, or deletes entries, mirroring
// `mindmappings models` for the model store.
func cmdAtlas(args []string) error {
	if len(args) > 0 && args[0] == "build" {
		return cmdAtlasBuild(args[1:])
	}
	fs := flag.NewFlagSet("atlas", flag.ExitOnError)
	atlasDir := fs.String("atlas", "", "atlas directory (required)")
	gc := fs.Bool("gc", false, "drop superseded versions, entries with drifted workload/arch fingerprints, and crash debris")
	del := fs.String("delete", "", "delete one entry by ID")
	verbose := fs.Bool("v", false, "also print fingerprints and keys")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *atlasDir == "" {
		return fmt.Errorf("atlas: -atlas is required")
	}
	a, err := atlas.Open(*atlasDir)
	if err != nil {
		return err
	}
	if *del != "" {
		if err := a.Delete(*del); err != nil {
			return err
		}
		fmt.Printf("deleted %s\n", *del)
		return nil
	}
	if *gc {
		removed, err := a.GC(atlasEntryStale)
		if err != nil {
			return err
		}
		fmt.Printf("gc: removed %d entries\n", len(removed))
		for _, id := range removed {
			fmt.Println("  " + id)
		}
		return nil
	}

	entries := a.List()
	if len(entries) == 0 {
		fmt.Printf("atlas %s is empty (populate with `mindmappings atlas build` or serve write-back)\n", *atlasDir)
		return nil
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tALGO\tSHAPE\tOBJ\tBEST\tEVALS\tMETHOD\tSOURCE\tCREATED")
	for _, e := range entries {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.4f\t%d\t%s\t%s\t%s\n",
			e.ID, e.Algo, shapeString(e.Shape), e.Objective, e.BestEDP,
			e.Evals, e.Method, e.Source, e.Created.Format("2006-01-02 15:04"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *verbose {
		for _, e := range entries {
			fmt.Printf("\n%s (%s %s v%d)\n", e.ID, e.Algo, shapeString(e.Shape), e.Version)
			fmt.Printf("  key / family  %s / %s\n", e.Key, e.Family)
			fmt.Printf("  workload fp   %s\n", e.AlgoFP)
			fmt.Printf("  arch fp       %s\n", e.ArchFP)
			fmt.Printf("  cost model    %s, objective %s\n", e.CostModel, e.Objective)
		}
	}
	return nil
}

// atlasEntryStale is the `atlas -gc` staleness predicate: an entry whose
// workload is still registered but whose recorded fingerprints no longer
// match the current definition (the workload or the default accelerator
// drifted) can never be looked up again — its key embeds the old
// fingerprints — so it is dead weight. Entries for unregistered workloads
// (inline einsums) are kept: there is nothing to check them against.
func atlasEntryStale(e atlas.Entry) bool {
	algo, err := loopnest.AlgorithmByName(e.Algo)
	if err != nil {
		return false
	}
	if algo.Fingerprint() != e.AlgoFP {
		return true
	}
	return modelstore.ArchFingerprint(arch.Default(len(algo.Tensors)-1)) != e.ArchFP
}

func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, s := range shape {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, "x")
}

// cmdAtlasBuild is the offline sweep: it fans the workload×shape grid
// through a local JobManager (the same execution path serve uses) with
// atlas write-back enabled, so every solved grid point is published under
// source "build". A later `serve -atlas` on the same directory answers
// those exact shapes by lookup and warm-starts everything nearby.
func cmdAtlasBuild(args []string) error {
	fs := flag.NewFlagSet("atlas build", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	grid := fs.String("grid", "", `shape grid as dim=size|size pairs, e.g. "M=64|128|256,N=128,K=512|1024" (cartesian product over the algorithm's dims; unlisted dims need exactly one value... so list them all)`)
	atlasDir := fs.String("atlas", "", "atlas directory to publish into (required)")
	searcher := fs.String("searcher", "ga", "search method per grid point: mm (needs -surrogate), sa, ga, rl, random")
	surName := fs.String("surrogate", "", "surrogate file name inside -models, for -searcher mm")
	modelsDir := fs.String("models", ".", "surrogate directory, for -searcher mm")
	model := fs.String("model", "", costModelUsage)
	evals := fs.Int("evals", 2000, "cost-model evaluation budget per grid point")
	objective := fs.String("objective", "edp", "optimization objective: edp, ed2p, energy, delay")
	seed := fs.Int64("seed", 1, "base RNG seed (grid point i searches with seed+i)")
	workers := fs.Int("workers", 0, "concurrent grid points (default: runtime.NumCPU())")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *atlasDir == "" {
		return fmt.Errorf("atlas build: -atlas is required")
	}
	if *grid == "" {
		return fmt.Errorf("atlas build: -grid is required")
	}
	if *algoName == "" && *einsum == "" {
		*algoName = defaultAlgo
	}
	shapes, err := parseGrid(*grid)
	if err != nil {
		return fmt.Errorf("atlas build: %w", err)
	}

	a, err := atlas.Open(*atlasDir)
	if err != nil {
		return err
	}
	registry := service.NewModelRegistry(*modelsDir, 0)
	cache := service.NewEvalCache(0)
	// Queue capacity covers the whole grid so submission never blocks.
	jobs := service.NewJobManager(registry, cache, *workers, len(shapes)+1)
	defer jobs.Shutdown(context.Background())
	jobs.SetAtlasSource("build")
	jobs.EnableAtlas(a, false)

	fmt.Fprintf(os.Stderr, "atlas build: %d grid points -> %s\n", len(shapes), *atlasDir)
	ids := make([]string, 0, len(shapes))
	for i, sh := range shapes {
		req := service.SearchRequest{
			Algo:      *algoName,
			Einsum:    *einsum,
			Dims:      sh,
			Searcher:  *searcher,
			Model:     *surName,
			CostModel: *model,
			Evals:     *evals,
			Objective: *objective,
			Seed:      *seed + int64(i),
		}
		job, err := jobs.Submit(req)
		if err != nil {
			return fmt.Errorf("atlas build: grid point %v: %w", sh, err)
		}
		if job.Status == service.JobDone {
			// Already in the atlas: the exact-hit path answered it.
			fmt.Fprintf(os.Stderr, "  %v: already solved (atlas hit)\n", sh)
			continue
		}
		ids = append(ids, job.ID)
	}
	failed := 0
	for _, id := range ids {
		job, err := jobs.Wait(context.Background(), id)
		if err != nil {
			return err
		}
		if job.Status != service.JobDone {
			failed++
			fmt.Fprintf(os.Stderr, "  job %s: %s (%s)\n", id, job.Status, job.Error)
			continue
		}
		if job.Result != nil {
			fmt.Fprintf(os.Stderr, "  %v evals=%d best=%.4f\n",
				job.Request.Dims, job.Result.Evals, job.Result.BestEDP)
		}
	}
	st := a.Stats()
	fmt.Printf("atlas %s: %d entries across %d shapes (%d families)\n",
		*atlasDir, st.Entries, st.Keys, st.Families)
	if failed > 0 {
		return fmt.Errorf("atlas build: %d of %d grid points failed", failed, len(shapes))
	}
	return nil
}

// parseGrid expands "M=64|128,N=32,K=512|1024" into the cartesian product
// of per-dimension size lists, as dim-name → size maps in deterministic
// order (last-listed dimension varies fastest).
func parseGrid(spec string) ([]map[string]int, error) {
	type axis struct {
		name  string
		sizes []int
	}
	var axes []axis
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, vals, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("grid term %q is not dim=size|size", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("grid dimension %q listed twice", name)
		}
		seen[name] = true
		ax := axis{name: name}
		for _, v := range strings.Split(vals, "|") {
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("grid size %q for %s is not a positive integer", v, name)
			}
			ax.sizes = append(ax.sizes, n)
		}
		axes = append(axes, ax)
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("empty grid")
	}
	points := []map[string]int{{}}
	for _, ax := range axes {
		next := make([]map[string]int, 0, len(points)*len(ax.sizes))
		for _, p := range points {
			for _, size := range ax.sizes {
				q := make(map[string]int, len(p)+1)
				for k, v := range p {
					q[k] = v
				}
				q[ax.name] = size
				next = append(next, q)
			}
		}
		points = next
	}
	return points, nil
}
