package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mindmappings/internal/atlas"
	"mindmappings/internal/infer"
	"mindmappings/internal/modelstore"
	"mindmappings/internal/resilience"
	"mindmappings/internal/service"
	"mindmappings/internal/trainer"
)

// cmdServe runs the long-lived mapping-search service: an HTTP JSON API
// backed by a search worker pool, a separate training pipeline publishing
// into a versioned artifact store, a shared surrogate registry, and a
// shared cost-model evaluation cache. See internal/service for the API
// surface.
//
// On SIGINT/SIGTERM the server drains gracefully: /readyz flips to 503,
// the listener stops accepting, in-flight search jobs are cancelled — each
// running searcher emits a final checkpoint into the job journal — and the
// process exits once both pools have stopped or the grace period expires.
// The next `serve` on the same -journal directory recovers the drained
// jobs and resumes them from those checkpoints, so a rolling restart
// suspends work instead of discarding it.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelDir := fs.String("models", ".", "directory of trained surrogate files served by /v1/models")
	storeDir := fs.String("store", "", "versioned artifact store directory (default <models>/store); training over HTTP publishes here")
	workers := fs.Int("workers", 0, "search worker pool size (default: runtime.NumCPU())")
	queueCap := fs.Int("queue", 64, "pending-job queue capacity")
	trainWorkers := fs.Int("trainworkers", 2, "training pipeline worker count (separate pool from search workers)")
	trainQueue := fs.Int("trainqueue", 16, "pending-training-job queue capacity")
	cacheCap := fs.Int("cache", 0, "deprecated alias for -evalcache-cap")
	evalCacheCap := fs.Int("evalcache-cap", 0,
		fmt.Sprintf("shared eval-cache capacity in entries (default %d); occupancy is reported as eval_cache_utilization", service.DefaultEvalCacheCapacity))
	regCap := fs.Int("maxmodels", service.DefaultRegistryCapacity, "max surrogates resident in memory (LRU beyond this)")
	shutdownGrace := fs.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quiet := fs.Bool("quiet", false, "disable per-request structured log lines")
	journalDir := fs.String("journal", "", `crash-safe job journal directory (default <models>/jobs; "none" disables); queued and running search jobs are recovered and resumed from it on the next start`)
	atlasDir := fs.String("atlas", "", `precomputed mapping atlas directory (default <models>/atlas; "none" disables); repeat requests are answered from it without running a search, near-miss mm searches warm-start from the nearest solved shape, and completed jobs write their solutions back`)
	atlasRO := fs.Bool("atlas-readonly", false, "serve atlas hits and neighbor warm starts but never write solved mappings back")
	checkpointEvals := fs.Int("checkpoint-evals", 0, "evaluations between searcher checkpoints (0: library default)")
	maxJobTime := fs.Duration("maxjobtime", 0, "server-side anytime deadline applied to every search job; at expiry jobs complete with their best-so-far mapping marked degraded (0: no ceiling)")
	batchWindow := fs.Duration("batch-window", infer.DefaultWindow, "latency window for cross-request surrogate inference batching; concurrent jobs sharing a model have their queries coalesced into larger GEMM batches within this window (0: disable batching)")
	batchMax := fs.Int("batch-max", infer.DefaultMaxBatch, "max rows per coalesced surrogate batch; a full batch flushes immediately without waiting out -batch-window")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant sustained admissions/second (0: no rate quota)")
	quotaBurst := fs.Float64("quota-burst", 0, "per-tenant token-bucket depth (default max(quota-rate, 1))")
	quotaConc := fs.Int("quota-concurrent", 0, "per-tenant cap on jobs in flight (0: no cap)")
	sloOn := fs.Bool("slo", false, "track service-level objectives as multi-window burn rates: /v1/status health score, slo_* series on /metrics, /readyz unready at health 0")
	sloAvail := fs.Float64("slo-availability", 0.999, "target fraction of terminal jobs finishing successfully (needs -slo; 0 disables the objective)")
	sloQueueWait := fs.Duration("slo-queue-wait", 30*time.Second, "queue-wait threshold: 95% of jobs must start within it (needs -slo; 0 disables the objective)")
	sloFirstEval := fs.Duration("slo-first-eval", 5*time.Second, "time-to-first-eval threshold: 95% of jobs must produce an evaluation within it (needs -slo; 0 disables the objective)")
	minHealth := fs.Float64("min-health", 0, "shed load while the SLO health score is below this fraction (needs -slo; 0: never shed on health)")
	faultsSpec := fs.String("faults", os.Getenv("MINDMAPPINGS_FAULTS"),
		`deterministic fault injection for chaos testing, e.g. "seed=7,eval=0.01,eval.lat=0.05:25ms,journal.write=0.05,store.publish=0.1" (default $MINDMAPPINGS_FAULTS)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fi, err := os.Stat(*modelDir); err != nil || !fi.IsDir() {
		return fmt.Errorf("serve: -models %q is not a directory", *modelDir)
	}
	if *storeDir == "" {
		*storeDir = filepath.Join(*modelDir, "store")
	}
	if *journalDir == "" {
		*journalDir = filepath.Join(*modelDir, "jobs")
	}
	if *atlasDir == "" {
		*atlasDir = filepath.Join(*modelDir, "atlas")
	}
	if *evalCacheCap <= 0 {
		*evalCacheCap = *cacheCap // honor the deprecated alias
	}
	faults, err := resilience.ParseFaults(*faultsSpec)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	store, err := modelstore.Open(*storeDir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	registry := service.NewModelRegistry(*modelDir, *regCap)
	cache := service.NewEvalCache(*evalCacheCap)
	jobs := service.NewJobManager(registry, cache, *workers, *queueCap)
	jobs.SetMaxJobTime(*maxJobTime)
	jobs.SetCheckpointInterval(*checkpointEvals)
	jobs.SetBatching(infer.Config{Window: *batchWindow, MaxBatch: *batchMax})
	if *atlasDir != "none" {
		mappings, err := atlas.Open(*atlasDir)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		jobs.EnableAtlas(mappings, *atlasRO)
		if faults != nil {
			mappings.SetFailpoint(faults.Fail)
		}
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "mindmappings serve: fault injection armed (%s)\n", *faultsSpec)
		jobs.SetFaults(faults)
		store.SetFailpoint(faults.Fail)
	}
	if *minHealth > 0 && !*sloOn {
		return fmt.Errorf("serve: -min-health needs -slo (the health score it sheds on)")
	}
	if *quotaRate > 0 || *quotaConc > 0 || *minHealth > 0 {
		jobs.EnableAdmission(resilience.AdmissionConfig{
			Rate:          *quotaRate,
			Burst:         *quotaBurst,
			MaxConcurrent: *quotaConc,
			// Shed per-tenant once the pending queue is nearly full: the
			// queue-full 503 would hit soon anyway, but shedding first keeps
			// light tenants admitted while heavy ones back off. MinHealth
			// adds SLO-driven shedding once -slo wires in a health score.
			Thresholds: resilience.Thresholds{QueueFraction: 0.9, MinHealth: *minHealth},
		})
	}
	if *journalDir != "none" {
		journal, err := resilience.OpenJournal(*journalDir)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if faults != nil {
			journal.SetFailpoint(faults.Fail)
		}
		recovered, err := jobs.EnableJournal(journal)
		if err != nil {
			return fmt.Errorf("serve: recovering journal %s: %w", *journalDir, err)
		}
		if recovered > 0 {
			fmt.Fprintf(os.Stderr, "mindmappings serve: recovered %d journaled search job(s) from %s\n", recovered, *journalDir)
		}
	}
	pipeline := trainer.New(store, *trainWorkers, *trainQueue)
	api := service.NewServer(jobs, registry, cache).WithTraining(store, pipeline)
	if *sloOn {
		cfg := service.DefaultSLOConfig()
		cfg.Availability = *sloAvail
		cfg.QueueWaitMax = *sloQueueWait
		cfg.FirstEvalMax = *sloFirstEval
		if api.EnableSLO(cfg) == nil {
			return fmt.Errorf("serve: -slo set but every objective is disabled")
		}
	}
	if !*quiet {
		api.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *pprofOn {
		api.EnablePprof()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mindmappings serve: listening on %s (models: %s, store: %s, workers: %d, train workers: %d)\n",
			*addr, *modelDir, *storeDir, jobs.Workers(), pipeline.Workers())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mindmappings serve: draining (journaled jobs resume on next start)")
	grace, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	// Drain order: flip /readyz first so load balancers stop routing, stop
	// the listener, then cancel search jobs — each emits a final checkpoint
	// that stays journaled for the next process — and stop the pools.
	jobs.BeginDrain()
	httpErr := srv.Shutdown(grace)
	jobErr := jobs.Drain(grace)
	trainErr := pipeline.Shutdown(grace)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	if jobErr != nil {
		return jobErr
	}
	return trainErr
}
