package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mindmappings/internal/modelstore"
	"mindmappings/internal/service"
	"mindmappings/internal/trainer"
)

// cmdServe runs the long-lived mapping-search service: an HTTP JSON API
// backed by a search worker pool, a separate training pipeline publishing
// into a versioned artifact store, a shared surrogate registry, and a
// shared cost-model evaluation cache. See internal/service for the API
// surface.
//
// On SIGINT/SIGTERM the server drains gracefully: the listener stops
// accepting, in-flight search jobs and training runs are cancelled (training
// checkpoints are kept in memory per job, but the process is exiting — the
// durable state is whatever the store committed), and the process exits
// once both pools have stopped or the grace period expires.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelDir := fs.String("models", ".", "directory of trained surrogate files served by /v1/models")
	storeDir := fs.String("store", "", "versioned artifact store directory (default <models>/store); training over HTTP publishes here")
	workers := fs.Int("workers", 0, "search worker pool size (default: runtime.NumCPU())")
	queueCap := fs.Int("queue", 64, "pending-job queue capacity")
	trainWorkers := fs.Int("trainworkers", 2, "training pipeline worker count (separate pool from search workers)")
	trainQueue := fs.Int("trainqueue", 16, "pending-training-job queue capacity")
	cacheCap := fs.Int("cache", service.DefaultEvalCacheCapacity, "eval-cache capacity in entries")
	regCap := fs.Int("maxmodels", service.DefaultRegistryCapacity, "max surrogates resident in memory (LRU beyond this)")
	shutdownGrace := fs.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quiet := fs.Bool("quiet", false, "disable per-request structured log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fi, err := os.Stat(*modelDir); err != nil || !fi.IsDir() {
		return fmt.Errorf("serve: -models %q is not a directory", *modelDir)
	}
	if *storeDir == "" {
		*storeDir = filepath.Join(*modelDir, "store")
	}

	store, err := modelstore.Open(*storeDir)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	registry := service.NewModelRegistry(*modelDir, *regCap)
	cache := service.NewEvalCache(*cacheCap)
	jobs := service.NewJobManager(registry, cache, *workers, *queueCap)
	pipeline := trainer.New(store, *trainWorkers, *trainQueue)
	api := service.NewServer(jobs, registry, cache).WithTraining(store, pipeline)
	if !*quiet {
		api.SetLogger(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	}
	if *pprofOn {
		api.EnablePprof()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mindmappings serve: listening on %s (models: %s, store: %s, workers: %d, train workers: %d)\n",
			*addr, *modelDir, *storeDir, jobs.Workers(), pipeline.Workers())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mindmappings serve: shutting down")
	grace, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	httpErr := srv.Shutdown(grace)
	jobErr := jobs.Shutdown(grace)
	trainErr := pipeline.Shutdown(grace)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	if jobErr != nil {
		return jobErr
	}
	return trainErr
}
