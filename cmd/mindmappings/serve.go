package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mindmappings/internal/service"
)

// cmdServe runs the long-lived mapping-search service: an HTTP JSON API
// backed by a worker pool, a shared surrogate registry, and a shared
// cost-model evaluation cache. See internal/service for the API surface.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelDir := fs.String("models", ".", "directory of trained surrogate files served by /v1/models")
	workers := fs.Int("workers", 0, "search worker pool size (default: runtime.NumCPU())")
	queueCap := fs.Int("queue", 64, "pending-job queue capacity")
	cacheCap := fs.Int("cache", service.DefaultEvalCacheCapacity, "eval-cache capacity in entries")
	regCap := fs.Int("maxmodels", service.DefaultRegistryCapacity, "max surrogates resident in memory (LRU beyond this)")
	shutdownGrace := fs.Duration("grace", 10*time.Second, "graceful-shutdown timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fi, err := os.Stat(*modelDir); err != nil || !fi.IsDir() {
		return fmt.Errorf("serve: -models %q is not a directory", *modelDir)
	}

	registry := service.NewModelRegistry(*modelDir, *regCap)
	cache := service.NewEvalCache(*cacheCap)
	jobs := service.NewJobManager(registry, cache, *workers, *queueCap)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.NewServer(jobs, registry, cache).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "mindmappings serve: listening on %s (models: %s, workers: %d)\n",
			*addr, *modelDir, jobs.Workers())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "mindmappings serve: shutting down")
	grace, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	httpErr := srv.Shutdown(grace)
	jobErr := jobs.Shutdown(grace)
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	return jobErr
}
