// Command mindmappings is the command-line front end of the Mind Mappings
// framework: train surrogates (Phase 1), search for mappings (Phase 2),
// compare search methods, list workloads, and dump cost-surface data.
//
// Usage:
//
//	mindmappings algos
//	mindmappings train   -algo cnn-layer -config small -out cnn.surrogate
//	mindmappings search  -algo cnn-layer -surrogate cnn.surrogate -problem ResNet_Conv_4 -evals 1000
//	mindmappings search  -algo gemm -surrogate gemm.surrogate -shape M=512,N=512,K=512 -evals 1000
//	mindmappings train   -einsum "O[m,n] += A[m,k] * B[k,n]" -config tiny -out inline.surrogate
//	mindmappings compare -algo mttkrp    -surrogate mtt.surrogate -problem MTTKRP_0 -evals 1000
//	mindmappings surface -problem ResNet_Conv_4 -out surface.dat
//	mindmappings serve   -addr :8080 -models ./models
//
// Workloads resolve through the registry seeded by internal/workload
// (-algo) or compile from an inline einsum spec (-einsum); see
// DESIGN.md §6.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/surrogate"
	"mindmappings/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "surface":
		err = cmdSurface(os.Args[2:])
	case "algos":
		err = cmdAlgos(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mindmappings: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mindmappings:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `mindmappings <command> [flags]

commands:
  train     train a Phase-1 surrogate for a workload and save it
  search    run the Phase-2 gradient search for one problem
  compare   run Mind Mappings against SA/GA/RL/random on one problem
  surface   dump the Figure-3 style cost surface for a CNN problem
  algos     list the registered workloads (dims, tensors, example shapes)
  serve     run the concurrent mapping-search HTTP service

workloads are selected with -algo <name> (registered: %s) or defined
inline with -einsum "O[m,n] += A[m,k] * B[k,n]"

run "mindmappings <command> -h" for per-command flags
`, strings.Join(workload.Names(), ", "))
}

// costModelUsage documents the -model flag shared by search and compare.
const costModelUsage = "cost-model backend: timeloop (default, reference reuse analysis) or roofline (optimistic lower-bound model)"

// defaultAlgo keeps the historical -algo default; -einsum overrides it.
const defaultAlgo = "cnn-layer"

// einsumUsage documents the -einsum flag shared by train, search, compare.
const einsumUsage = `inline workload spec, e.g. "O[m,n] += A[m,k] * B[k,n]" (instead of -algo)`

// algoUsage documents the -algo flag: the list is generated from the
// registry, so it can never go stale.
func algoUsage() string {
	return "target workload: " + strings.Join(workload.Names(), ", ") +
		" (default " + defaultAlgo + ")"
}

// surrogateConfig resolves a named Phase-1 configuration.
func surrogateConfig(name string) (surrogate.Config, error) {
	switch name {
	case "tiny":
		return surrogate.TinyConfig(), nil
	case "small":
		return surrogate.SmallConfig(), nil
	case "paper":
		return surrogate.PaperConfig(), nil
	}
	return surrogate.Config{}, fmt.Errorf("unknown config %q (want tiny, small, or paper)", name)
}

// resolveAlgo resolves the -algo/-einsum flag pair into an algorithm: a
// registered workload name, or an inline einsum spec. Setting both is an
// error (the flags default to empty so an explicit -algo is never
// silently dropped); setting neither selects defaultAlgo.
func resolveAlgo(algoName, einsum string) (*loopnest.Algorithm, error) {
	if algoName != "" && einsum != "" {
		return nil, fmt.Errorf("use -algo or -einsum, not both")
	}
	if einsum != "" {
		return workload.CompileInline(einsum)
	}
	if algoName == "" {
		algoName = defaultAlgo
	}
	return loopnest.AlgorithmByName(algoName)
}

// newMapper builds the mapper for a workload with the matching accelerator
// datapath.
func newMapper(algoName, einsum string) (*core.Mapper, error) {
	algo, err := resolveAlgo(algoName, einsum)
	if err != nil {
		return nil, err
	}
	return core.NewMapper(algo, arch.Default(len(algo.Tensors)-1))
}

// resolveProblem finds a Table-1 problem by name, or parses an explicit
// shape: comma-separated sizes in the workload's canonical dimension order
// (cnn-layer: N,K,C,X,Y,R,S), or name=size pairs in any order
// (e.g. "M=256,N=256,K=512").
func resolveProblem(algo *loopnest.Algorithm, problemName, shape string) (loopnest.Problem, error) {
	if problemName != "" {
		all, err := loopnest.Table1Problems()
		if err != nil {
			return loopnest.Problem{}, err
		}
		for _, p := range all {
			if p.Name == problemName && p.Algo.Name == algo.Name {
				return p, nil
			}
		}
		return loopnest.Problem{}, fmt.Errorf("problem %q not found for %s (see Table 1 names)", problemName, algo.Name)
	}
	if shape == "" {
		return loopnest.Problem{}, fmt.Errorf("need -problem or -shape")
	}
	parts := strings.Split(shape, ",")
	if strings.Contains(parts[0], "=") {
		dims := make(map[string]int, len(parts))
		for _, p := range parts {
			name, val, ok := strings.Cut(p, "=")
			if !ok {
				return loopnest.Problem{}, fmt.Errorf("bad shape element %q: want name=size", p)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return loopnest.Problem{}, fmt.Errorf("bad shape element %q: %w", p, err)
			}
			dn := strings.TrimSpace(name)
			if _, dup := dims[dn]; dup {
				return loopnest.Problem{}, fmt.Errorf("shape sets %s twice", dn)
			}
			dims[dn] = v
		}
		return algo.ProblemFromDims("custom", dims)
	}
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return loopnest.Problem{}, fmt.Errorf("bad shape element %q: %w", p, err)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) != algo.NumDims() {
		return loopnest.Problem{}, fmt.Errorf("%s shape needs %d sizes in order %s",
			algo.Name, algo.NumDims(), strings.Join(algo.DimNames, ","))
	}
	return algo.NewProblem("custom", sizes)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	cfgName := fs.String("config", "small", "phase-1 configuration: tiny, small, paper")
	out := fs.String("out", "surrogate.bin", "output surrogate file")
	model := fs.String("model", "", "cost-model backend that labels the training set: timeloop (default) or roofline; search with the same -model so the surrogate approximates the f it is scored against")
	samples := fs.Int("samples", 0, "override training-set size")
	epochs := fs.Int("epochs", 0, "override training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := surrogateConfig(*cfgName)
	if err != nil {
		return err
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *epochs > 0 {
		cfg.Train.Epochs = *epochs
	}
	cfg.CostModel = *model
	cfg.Seed = *seed
	cfg.Train.Log = os.Stderr

	mp, err := newMapper(*algoName, *einsum)
	if err != nil {
		return err
	}
	start := time.Now()
	hist, err := mp.TrainSurrogate(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := mp.SaveSurrogate(f); err != nil {
		return err
	}
	fmt.Printf("trained %s surrogate in %v (final train loss %.4f, test loss %.4f) -> %s\n",
		mp.Algo.Name, time.Since(start).Round(time.Second), hist.FinalTrain(), hist.FinalTest(), *out)
	return nil
}

func loadMapperWithSurrogate(algoName, einsum, path string) (*core.Mapper, error) {
	mp, err := newMapper(algoName, einsum)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := mp.LoadSurrogate(f); err != nil {
		return nil, err
	}
	return mp, nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	surPath := fs.String("surrogate", "surrogate.bin", "trained surrogate file")
	problemName := fs.String("problem", "", "Table-1 problem name")
	shape := fs.String("shape", "", "explicit problem shape: sizes in canonical dim order (cnn-layer: 16,256,256,12,12,3,3) or name=size pairs (M=256,N=256,K=512)")
	model := fs.String("model", "", costModelUsage)
	evals := fs.Int("evals", 1000, "surrogate-query budget")
	maxTime := fs.Duration("time", 0, "wall-clock budget (overrides -evals when set)")
	objective := fs.String("objective", "edp", "optimization objective: edp, ed2p, energy, delay")
	seed := fs.Int64("seed", 1, "random seed")
	chains := fs.Int("chains", 1, "lockstep gradient-descent chains sharing the budget (batched surrogate queries)")
	parallel := fs.Int("parallel", 0, "workers for batched cost-model scoring (0 = sequential; results are identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	obj, err := search.ParseObjective(*objective)
	if err != nil {
		return err
	}
	mp, err := loadMapperWithSurrogate(*algoName, *einsum, *surPath)
	if err != nil {
		return err
	}
	mp.CostModel = *model
	prob, err := resolveProblem(mp.Algo, *problemName, *shape)
	if err != nil {
		return err
	}
	pc, err := mp.NewProblemContext(prob)
	if err != nil {
		return err
	}
	pc.Objective = obj
	pc.Parallelism = *parallel
	budget := search.Budget{MaxEvals: *evals}
	if *maxTime > 0 {
		budget = search.Budget{MaxTime: *maxTime}
	}
	res, err := mp.FindMappingChains(pc, budget, *seed, *chains)
	if err != nil {
		return err
	}
	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("problem    %s\n", prob.String())
	fmt.Printf("evals      %d in %v\n", res.Evals, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("EDP        %.4g J*s (%.1fx algorithmic minimum)\n", cost.EDP, norm)
	fmt.Printf("energy     %.4g pJ, cycles %.4g, PE utilization %.1f%%\n",
		cost.TotalEnergyPJ, cost.Cycles, 100*cost.Utilization)
	fmt.Printf("mapping    %s\n", res.Best.String())
	fmt.Printf("\nloop nest:\n%s", pc.Space.RenderLoopNest(&res.Best))
	fmt.Printf("\ncost report:\n")
	cost.Render(os.Stdout, prob.Algo)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	surPath := fs.String("surrogate", "surrogate.bin", "trained surrogate file")
	problemName := fs.String("problem", "", "Table-1 problem name")
	shape := fs.String("shape", "", "explicit problem shape (canonical sizes or name=size pairs)")
	model := fs.String("model", "", costModelUsage)
	evals := fs.Int("evals", 1000, "evaluation budget per method")
	maxTime := fs.Duration("time", 0, "wall-clock budget per method (overrides -evals)")
	latency := fs.Duration("latency", 2*time.Millisecond, "emulated reference-cost-model latency (iso-time only)")
	rlHidden := fs.Int("rlhidden", 64, "RL network width (paper: 300)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mp, err := loadMapperWithSurrogate(*algoName, *einsum, *surPath)
	if err != nil {
		return err
	}
	mp.CostModel = *model
	prob, err := resolveProblem(mp.Algo, *problemName, *shape)
	if err != nil {
		return err
	}
	budget := search.Budget{MaxEvals: *evals}
	isoTime := *maxTime > 0
	if isoTime {
		budget = search.Budget{MaxTime: *maxTime}
	}
	mm, err := mp.MindMappingsSearcher()
	if err != nil {
		return err
	}
	methods := append(core.Baselines(*rlHidden), mm)
	fmt.Printf("%-8s %12s %10s %12s %12s\n", "method", "best EDP/min", "evals", "elapsed", "us/step")
	for _, method := range methods {
		pc, err := mp.NewProblemContext(prob)
		if err != nil {
			return err
		}
		if isoTime && method.Name() != "MM" {
			pc.QueryLatency = *latency
		}
		res, err := mp.SearchWith(method, pc, budget, *seed)
		if err != nil {
			return err
		}
		perStep := 0.0
		if res.Evals > 0 {
			perStep = float64(res.Elapsed.Microseconds()) / float64(res.Evals)
		}
		fmt.Printf("%-8s %12.1f %10d %12v %12.1f\n",
			method.Name(), res.BestEDP, res.Evals, res.Elapsed.Round(time.Millisecond), perStep)
	}
	return nil
}

func cmdSurface(args []string) error {
	fs := flag.NewFlagSet("surface", flag.ExitOnError)
	problemName := fs.String("problem", "ResNet_Conv_4", "Table-1 CNN problem name")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "random seed for the fixed non-swept attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algo, err := loopnest.AlgorithmByName("cnn-layer")
	if err != nil {
		return err
	}
	prob, err := resolveProblem(algo, *problemName, "")
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeSurface(w, prob, *seed)
}
