// Command mindmappings is the command-line front end of the Mind Mappings
// framework: train surrogates (Phase 1), search for mappings (Phase 2),
// compare search methods, list workloads, and dump cost-surface data.
//
// Usage:
//
//	mindmappings algos
//	mindmappings train   -algo cnn-layer -config small -out cnn.surrogate
//	mindmappings train   -algo cnn-layer -store ./models/store -warm auto
//	mindmappings models  -store ./models/store
//	mindmappings search  -algo cnn-layer -surrogate cnn.surrogate -problem ResNet_Conv_4 -evals 1000
//	mindmappings search  -algo gemm -surrogate gemm.surrogate -shape M=512,N=512,K=512 -evals 1000
//	mindmappings train   -einsum "O[m,n] += A[m,k] * B[k,n]" -config tiny -out inline.surrogate
//	mindmappings compare -algo mttkrp    -surrogate mtt.surrogate -problem MTTKRP_0 -evals 1000
//	mindmappings surface -problem ResNet_Conv_4 -out surface.dat
//	mindmappings serve   -addr :8080 -models ./models
//
// Workloads resolve through the registry seeded by internal/workload
// (-algo) or compile from an inline einsum spec (-einsum); see
// DESIGN.md §6.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mindmappings/internal/arch"
	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/modelstore"
	"mindmappings/internal/search"
	"mindmappings/internal/trainer"
	"mindmappings/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "surface":
		err = cmdSurface(os.Args[2:])
	case "algos":
		err = cmdAlgos(os.Args[2:])
	case "models":
		err = cmdModels(os.Args[2:])
	case "atlas":
		err = cmdAtlas(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "diag":
		err = cmdDiag(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mindmappings: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mindmappings:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `mindmappings <command> [flags]

commands:
  train     train a Phase-1 surrogate for a workload and save it
  search    run the Phase-2 gradient search for one problem
  compare   run Mind Mappings against SA/GA/RL/random on one problem
  surface   dump the Figure-3 style cost surface for a CNN problem
  algos     list the registered workloads (dims, tensors, example shapes)
  models    list, gc, or delete artifacts in a versioned model store
  atlas     build, list, gc, or delete entries in a precomputed mapping atlas
  serve     run the concurrent mapping-search + training HTTP service
  diag      snapshot a live server (status, metrics, flight recorder, traces) into one tar.gz

workloads are selected with -algo <name> (registered: %s) or defined
inline with -einsum "O[m,n] += A[m,k] * B[k,n]"

run "mindmappings <command> -h" for per-command flags
`, strings.Join(workload.Names(), ", "))
}

// costModelUsage documents the -model flag shared by search and compare.
const costModelUsage = "cost-model backend: timeloop (default, reference reuse analysis) or roofline (optimistic lower-bound model)"

// defaultAlgo keeps the historical -algo default; -einsum overrides it.
const defaultAlgo = "cnn-layer"

// einsumUsage documents the -einsum flag shared by train, search, compare.
const einsumUsage = `inline workload spec, e.g. "O[m,n] += A[m,k] * B[k,n]" (instead of -algo)`

// algoUsage documents the -algo flag: the list is generated from the
// registry, so it can never go stale.
func algoUsage() string {
	return "target workload: " + strings.Join(workload.Names(), ", ") +
		" (default " + defaultAlgo + ")"
}

// resolveAlgo resolves the -algo/-einsum flag pair into an algorithm: a
// registered workload name, or an inline einsum spec. Setting both is an
// error (the flags default to empty so an explicit -algo is never
// silently dropped); setting neither selects defaultAlgo.
func resolveAlgo(algoName, einsum string) (*loopnest.Algorithm, error) {
	if algoName != "" && einsum != "" {
		return nil, fmt.Errorf("use -algo or -einsum, not both")
	}
	if einsum != "" {
		return workload.CompileInline(einsum)
	}
	if algoName == "" {
		algoName = defaultAlgo
	}
	return loopnest.AlgorithmByName(algoName)
}

// newMapper builds the mapper for a workload with the matching accelerator
// datapath.
func newMapper(algoName, einsum string) (*core.Mapper, error) {
	algo, err := resolveAlgo(algoName, einsum)
	if err != nil {
		return nil, err
	}
	return core.NewMapper(algo, arch.Default(len(algo.Tensors)-1))
}

// resolveProblem finds a Table-1 problem by name, or parses an explicit
// shape: comma-separated sizes in the workload's canonical dimension order
// (cnn-layer: N,K,C,X,Y,R,S), or name=size pairs in any order
// (e.g. "M=256,N=256,K=512").
func resolveProblem(algo *loopnest.Algorithm, problemName, shape string) (loopnest.Problem, error) {
	if problemName != "" {
		all, err := loopnest.Table1Problems()
		if err != nil {
			return loopnest.Problem{}, err
		}
		for _, p := range all {
			if p.Name == problemName && p.Algo.Name == algo.Name {
				return p, nil
			}
		}
		return loopnest.Problem{}, fmt.Errorf("problem %q not found for %s (see Table 1 names)", problemName, algo.Name)
	}
	if shape == "" {
		return loopnest.Problem{}, fmt.Errorf("need -problem or -shape")
	}
	parts := strings.Split(shape, ",")
	if strings.Contains(parts[0], "=") {
		dims := make(map[string]int, len(parts))
		for _, p := range parts {
			name, val, ok := strings.Cut(p, "=")
			if !ok {
				return loopnest.Problem{}, fmt.Errorf("bad shape element %q: want name=size", p)
			}
			v, err := strconv.Atoi(strings.TrimSpace(val))
			if err != nil {
				return loopnest.Problem{}, fmt.Errorf("bad shape element %q: %w", p, err)
			}
			dn := strings.TrimSpace(name)
			if _, dup := dims[dn]; dup {
				return loopnest.Problem{}, fmt.Errorf("shape sets %s twice", dn)
			}
			dims[dn] = v
		}
		return algo.ProblemFromDims("custom", dims)
	}
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return loopnest.Problem{}, fmt.Errorf("bad shape element %q: %w", p, err)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) != algo.NumDims() {
		return loopnest.Problem{}, fmt.Errorf("%s shape needs %d sizes in order %s",
			algo.Name, algo.NumDims(), strings.Join(algo.DimNames, ","))
	}
	return algo.NewProblem("custom", sizes)
}

// cmdTrain runs Phase 1 through the same trainer.Pipeline the service
// uses: generate → train (warm-started when asked) → publish into a
// versioned artifact store. Without -store the artifact lands in a
// temporary store and only the -out file survives; with -store the run is
// versioned, warm-startable, and resolvable by `"model":"auto"` searches.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	cfgName := fs.String("config", "small", "phase-1 configuration: tiny, small, paper")
	out := fs.String("out", "surrogate.bin", `output surrogate file ("" to skip and only publish to -store)`)
	storeDir := fs.String("store", "", "publish into this versioned artifact store (the directory `mindmappings serve -store` and `mindmappings models` use)")
	warm := fs.String("warm", "", `warm-start parent: "auto" (best stored artifact of this workload), an artifact ID, or empty for a cold start; needs -store`)
	label := fs.String("name", "", "artifact label recorded in the store manifest")
	model := fs.String("model", "", "cost-model backend that labels the training set: timeloop (default) or roofline; search with the same -model so the surrogate approximates the f it is scored against")
	samples := fs.Int("samples", 0, "override training-set size")
	epochs := fs.Int("epochs", 0, "override training epochs")
	seed := fs.Int64("seed", 1, "random seed (0 keeps the named config's default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" && *storeDir == "" {
		return fmt.Errorf("train: nothing to produce — set -out, -store, or both")
	}
	if *warm != "" && *storeDir == "" {
		return fmt.Errorf("train: -warm needs -store (the parent artifact lives there)")
	}
	dir := *storeDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mindmappings-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	store, err := modelstore.Open(dir)
	if err != nil {
		return err
	}
	req := trainer.Request{
		Algo:      *algoName,
		Einsum:    *einsum,
		Config:    *cfgName,
		Samples:   *samples,
		Epochs:    *epochs,
		CostModel: *model,
		Seed:      *seed,
		Name:      *label,
		Warm:      *warm,
	}
	if req.Algo == "" && req.Einsum == "" {
		req.Algo = defaultAlgo
	}
	job, err := runTrainingJob(store, req)
	if err != nil {
		return err
	}
	m := job.Artifact
	lineage := "cold start"
	if m.Parent != "" {
		lineage = "warm-started from " + m.Parent
	}
	fmt.Printf("trained %s surrogate in %v (final train loss %.4f, test loss %.4f, %s)\n",
		m.Algo, time.Duration(m.TrainSeconds*float64(time.Second)).Round(time.Second), m.FinalTrain, m.FinalTest, lineage)
	if *storeDir != "" {
		fmt.Printf("published artifact %s (version %d) -> %s\n", m.ID, m.Version, dir)
	}
	if *out != "" {
		blob, err := os.ReadFile(store.BlobPath(m.ID))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

// runTrainingJob drives one request through a single-worker pipeline,
// mirroring the job's live progress to stderr and cancelling it cleanly on
// SIGINT/SIGTERM.
func runTrainingJob(store *modelstore.Store, req trainer.Request) (trainer.Job, error) {
	pipeline := trainer.New(store, 1, 1)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pipeline.Shutdown(ctx)
	}()
	job, err := pipeline.Submit(req)
	if err != nil {
		return trainer.Job{}, err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		pipeline.Cancel(job.ID)
	}()
	go func() {
		var last trainer.Progress
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			snap, ok := pipeline.Get(job.ID)
			if !ok || snap.Status.Terminal() {
				return
			}
			pr := snap.Progress
			switch {
			case pr.Phase == trainer.PhaseGenerate && pr.SamplesDone != last.SamplesDone:
				fmt.Fprintf(os.Stderr, "generate  %d/%d samples\n", pr.SamplesDone, pr.Samples)
			case pr.Phase == trainer.PhaseTrain && pr.Epoch != last.Epoch:
				fmt.Fprintf(os.Stderr, "epoch %3d/%d  train %.6f  test %.6f\n",
					pr.Epoch, pr.Epochs, pr.TrainLoss, pr.TestLoss)
			}
			last = pr
		}
	}()
	done, err := pipeline.Wait(context.Background(), job.ID)
	if err != nil {
		return trainer.Job{}, err
	}
	switch done.Status {
	case trainer.StatusDone:
		return done, nil
	case trainer.StatusCancelled:
		return trainer.Job{}, fmt.Errorf("training interrupted at %s (epoch %d/%d)",
			done.Progress.Phase, done.Progress.Epoch, done.Progress.Epochs)
	default:
		return trainer.Job{}, fmt.Errorf("training failed: %s", done.Error)
	}
}

func loadMapperWithSurrogate(algoName, einsum, path string) (*core.Mapper, error) {
	mp, err := newMapper(algoName, einsum)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := mp.LoadSurrogate(f); err != nil {
		return nil, err
	}
	return mp, nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	surPath := fs.String("surrogate", "surrogate.bin", "trained surrogate file")
	problemName := fs.String("problem", "", "Table-1 problem name")
	shape := fs.String("shape", "", "explicit problem shape: sizes in canonical dim order (cnn-layer: 16,256,256,12,12,3,3) or name=size pairs (M=256,N=256,K=512)")
	model := fs.String("model", "", costModelUsage)
	evals := fs.Int("evals", 1000, "surrogate-query budget")
	maxTime := fs.Duration("time", 0, "wall-clock budget (overrides -evals when set)")
	objective := fs.String("objective", "edp", "optimization objective: edp, ed2p, energy, delay")
	seed := fs.Int64("seed", 1, "random seed")
	chains := fs.Int("chains", 1, "lockstep gradient-descent chains sharing the budget (batched surrogate queries)")
	parallel := fs.Int("parallel", 0, "workers for batched cost-model scoring (0 = sequential; results are identical either way)")
	progress := fs.Bool("progress", false, "print live best-cost/throughput lines to stderr while searching")
	timeout := fs.Duration("timeout", 0, "anytime deadline: stop when it expires and report the best mapping found so far, marked degraded (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	obj, err := search.ParseObjective(*objective)
	if err != nil {
		return err
	}
	mp, err := loadMapperWithSurrogate(*algoName, *einsum, *surPath)
	if err != nil {
		return err
	}
	mp.CostModel = *model
	prob, err := resolveProblem(mp.Algo, *problemName, *shape)
	if err != nil {
		return err
	}
	pc, err := mp.NewProblemContext(prob)
	if err != nil {
		return err
	}
	pc.Objective = obj
	pc.Parallelism = *parallel
	if *progress {
		pc.Progress = progressPrinter(os.Stderr)
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		pc.Ctx = ctx
	}
	budget := search.Budget{MaxEvals: *evals}
	if *maxTime > 0 {
		budget = search.Budget{MaxTime: *maxTime}
	}
	res, err := mp.FindMappingChains(pc, budget, *seed, *chains)
	if err != nil {
		return err
	}
	degraded := pc.Ctx != nil && pc.Ctx.Err() != nil
	if degraded && res.Evals == 0 {
		return fmt.Errorf("search: -timeout %v expired before any evaluation completed", *timeout)
	}
	cost, norm, err := pc.Evaluate(&res.Best)
	if err != nil {
		return err
	}
	fmt.Printf("problem    %s\n", prob.String())
	if degraded {
		fmt.Printf("status     degraded: -timeout %v expired before the budget; best-so-far result\n", *timeout)
	}
	fmt.Printf("evals      %d in %v\n", res.Evals, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("EDP        %.4g J*s (%.1fx algorithmic minimum)\n", cost.EDP, norm)
	fmt.Printf("energy     %.4g pJ, cycles %.4g, PE utilization %.1f%%\n",
		cost.TotalEnergyPJ, cost.Cycles, 100*cost.Utilization)
	fmt.Printf("mapping    %s\n", res.Best.String())
	fmt.Printf("\nloop nest:\n%s", pc.Space.RenderLoopNest(&res.Best))
	fmt.Printf("\ncost report:\n")
	cost.Render(os.Stdout, prob.Algo)
	return nil
}

// progressPrinter returns a search.Progress hook that mirrors the live
// trajectory to w: every improvement and at most one heartbeat line per
// 500ms otherwise. It is the CLI twin of the service's SSE stream — both
// observe the same trajectory samples, so a -progress run shows exactly
// the strides a job's /events endpoint would. The hook is invoked from
// the searcher goroutine only, so the closure state needs no locking.
func progressPrinter(w io.Writer) func(search.Progress) {
	var lastLine time.Time
	return func(p search.Progress) {
		now := time.Now()
		if !p.Improved && now.Sub(lastLine) < 500*time.Millisecond {
			return
		}
		lastLine = now
		perSec := 0.0
		if s := p.Elapsed.Seconds(); s > 0 {
			perSec = float64(p.Eval) / s
		}
		mark := " "
		if p.Improved {
			mark = "*"
		}
		fmt.Fprintf(w, "%s eval %8d  best %12.4g  %9.0f evals/s  %v\n",
			mark, p.Eval, p.Best, perSec, p.Elapsed.Round(10*time.Millisecond))
	}
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	algoName := fs.String("algo", "", algoUsage())
	einsum := fs.String("einsum", "", einsumUsage)
	surPath := fs.String("surrogate", "surrogate.bin", "trained surrogate file")
	problemName := fs.String("problem", "", "Table-1 problem name")
	shape := fs.String("shape", "", "explicit problem shape (canonical sizes or name=size pairs)")
	model := fs.String("model", "", costModelUsage)
	evals := fs.Int("evals", 1000, "evaluation budget per method")
	maxTime := fs.Duration("time", 0, "wall-clock budget per method (overrides -evals)")
	latency := fs.Duration("latency", 2*time.Millisecond, "emulated reference-cost-model latency (iso-time only)")
	rlHidden := fs.Int("rlhidden", 64, "RL network width (paper: 300)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mp, err := loadMapperWithSurrogate(*algoName, *einsum, *surPath)
	if err != nil {
		return err
	}
	mp.CostModel = *model
	prob, err := resolveProblem(mp.Algo, *problemName, *shape)
	if err != nil {
		return err
	}
	budget := search.Budget{MaxEvals: *evals}
	isoTime := *maxTime > 0
	if isoTime {
		budget = search.Budget{MaxTime: *maxTime}
	}
	mm, err := mp.MindMappingsSearcher()
	if err != nil {
		return err
	}
	methods := append(core.Baselines(*rlHidden), mm)
	fmt.Printf("%-8s %12s %10s %12s %12s\n", "method", "best EDP/min", "evals", "elapsed", "us/step")
	for _, method := range methods {
		pc, err := mp.NewProblemContext(prob)
		if err != nil {
			return err
		}
		if isoTime && method.Name() != "MM" {
			pc.QueryLatency = *latency
		}
		res, err := mp.SearchWith(method, pc, budget, *seed)
		if err != nil {
			return err
		}
		perStep := 0.0
		if res.Evals > 0 {
			perStep = float64(res.Elapsed.Microseconds()) / float64(res.Evals)
		}
		fmt.Printf("%-8s %12.1f %10d %12v %12.1f\n",
			method.Name(), res.BestEDP, res.Evals, res.Elapsed.Round(time.Millisecond), perStep)
	}
	return nil
}

func cmdSurface(args []string) error {
	fs := flag.NewFlagSet("surface", flag.ExitOnError)
	problemName := fs.String("problem", "ResNet_Conv_4", "Table-1 CNN problem name")
	out := fs.String("out", "", "output file (default stdout)")
	seed := fs.Int64("seed", 1, "random seed for the fixed non-swept attributes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	algo, err := loopnest.AlgorithmByName("cnn-layer")
	if err != nil {
		return err
	}
	prob, err := resolveProblem(algo, *problemName, "")
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeSurface(w, prob, *seed)
}
