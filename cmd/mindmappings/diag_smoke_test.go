package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeDiagSmoke is the CI smoke for the operational-intelligence
// surface: it boots the real serve command with -slo armed, drives
// tenant-tagged traffic through it, requires the per-tenant RED series and
// the SLO burn-rate gauges on /metrics and a healthy /v1/status, then runs
// `mindmappings diag` against the live server and asserts the bundle is a
// well-formed tar.gz holding the manifest, both metrics views, the flight
// recorder, and per-job traces.
func TestServeDiagSmoke(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- cmdServe([]string{
			"-addr", addr, "-models", t.TempDir(),
			"-workers", "2", "-trainworkers", "1", "-quiet",
			"-slo", "-min-health", "0.5",
			// -atlas none: identical submissions must each run a real search
			// here, so every job contributes convergence telemetry.
			"-atlas", "none",
			"-grace", "5s",
		})
	}()
	base := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			break
		}
		select {
		case serveErr := <-done:
			t.Fatalf("serve exited early: %v", serveErr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Tenant-tagged traffic: three quick random searches for tenant "acme".
	const jobs = 3
	ids := make([]string, jobs)
	for i := range ids {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/search",
			strings.NewReader(`{"algo":"conv1d","shape":[1024,5],"searcher":"random","evals":40}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, raw)
		}
		var job struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatalf("submit %d: %v in %q", i, err, raw)
		}
		ids[i] = job.ID
	}
	for _, id := range ids {
		for {
			resp, err := http.Get(base + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var job struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if job.Status == "done" {
				break
			}
			if job.Status == "failed" || job.Status == "cancelled" {
				t.Fatalf("job %s: %s (%s)", id, job.Status, job.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %s", id, job.Status)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	// /v1/status reports healthy with the SLO report attached.
	sresp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Status string  `json:"status"`
		Health float64 `json:"health"`
		SLO    *struct {
			Objectives []struct {
				Name string `json:"name"`
			} `json:"objectives"`
		} `json:"slo"`
		FlightRecorderEvents uint64 `json:"flight_recorder_events"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if status.Status != "ok" || status.Health != 1 {
		t.Fatalf("status = %q health %v, want ok/1", status.Status, status.Health)
	}
	if status.SLO == nil || len(status.SLO.Objectives) != 3 {
		t.Fatalf("status SLO report = %+v, want 3 objectives", status.SLO)
	}
	if status.FlightRecorderEvents == 0 {
		t.Fatal("flight recorder saw no events despite completed jobs")
	}

	// The scrape surface carries the tenant RED series and burn-rate gauges.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tenant_requests_total{tenant="acme"} 3`,
		`tenant_jobs_done_total{tenant="acme"} 3`,
		`slo_health_score 1`,
		`slo_burn_rate{objective="availability",window="fast"}`,
		`search_convergence_stall_fraction_count{algo="conv1d",assist="cold"} 3`,
		`admission_retry_after_hint_seconds`,
		`obs_dropped_labels_total`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// One-command diagnostics bundle against the live server.
	bundle := filepath.Join(t.TempDir(), "diag.tar.gz")
	if err := cmdDiag([]string{"-addr", base, "-out", bundle, "-jobs", "2"}); err != nil {
		t.Fatalf("diag: %v", err)
	}
	members := readBundle(t, bundle)
	for _, want := range []string{
		"MANIFEST.json", "status.json", "metrics.json", "metrics.prom",
		"flightrecorder.json", "jobs.json", "models.json",
	} {
		if _, ok := members[want]; !ok {
			t.Errorf("bundle missing %s (have %v)", want, memberNames(members))
		}
	}
	traces := 0
	for name := range members {
		if strings.HasPrefix(name, "traces/") {
			traces++
		}
	}
	if traces != 2 {
		t.Errorf("bundle holds %d traces, want 2 (-jobs 2)", traces)
	}
	var manifest struct {
		Tool   string            `json:"tool"`
		Files  []string          `json:"files"`
		Errors map[string]string `json:"errors"`
	}
	if err := json.Unmarshal(members["MANIFEST.json"], &manifest); err != nil {
		t.Fatalf("MANIFEST.json: %v", err)
	}
	if len(manifest.Errors) != 0 {
		t.Errorf("diag recorded endpoint failures: %v", manifest.Errors)
	}
	if len(manifest.Files) != len(members)-1 {
		t.Errorf("manifest lists %d files, bundle holds %d", len(manifest.Files), len(members)-1)
	}
	var fr struct {
		Total  uint64            `json:"total"`
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(members["flightrecorder.json"], &fr); err != nil {
		t.Fatalf("flightrecorder.json: %v", err)
	}
	if fr.Total == 0 || len(fr.Events) == 0 {
		t.Error("bundled flight recorder is empty")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil && !strings.Contains(err.Error(), "Server closed") {
			t.Fatalf("serve shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// readBundle untars a diag bundle into member-name -> contents.
func readBundle(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	members := make(map[string][]byte)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle is not a tar: %v", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("reading %s: %v", hdr.Name, err)
		}
		members[hdr.Name] = data
	}
	return members
}

func memberNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	return names
}
