// End-to-end integration tests: the full Phase-1 + Phase-2 pipeline
// through the public core API, including surrogate persistence, exactly as
// a downstream user would drive it.
package mindmappings_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mindmappings/internal/core"
	"mindmappings/internal/loopnest"
	"mindmappings/internal/search"
	"mindmappings/internal/stats"
	"mindmappings/internal/surrogate"

	archpkg "mindmappings/internal/arch"
)

var (
	integOnce sync.Once
	integMp   *core.Mapper
	integErr  error
)

// integrationMapper trains one Conv1D mapper shared by the integration
// tests.
func integrationMapper(t *testing.T) *core.Mapper {
	t.Helper()
	integOnce.Do(func() {
		mp, err := core.NewMapper(loopnest.MustAlgorithm("conv1d"), archpkg.Default(2))
		if err != nil {
			integErr = err
			return
		}
		cfg := surrogate.TinyConfig()
		cfg.Samples = 2500
		cfg.Problems = 6
		cfg.Train.Epochs = 12
		if _, err := mp.TrainSurrogate(cfg); err != nil {
			integErr = err
			return
		}
		integMp = mp
	})
	if integErr != nil {
		t.Fatal(integErr)
	}
	return integMp
}

// TestPipelineEndToEnd exercises train -> save -> load -> search -> verify
// on an unseen problem.
func TestPipelineEndToEnd(t *testing.T) {
	mp := integrationMapper(t)

	// Persist and reload the surrogate through a fresh mapper, as a
	// compile-time integration would.
	var blob bytes.Buffer
	if err := mp.SaveSurrogate(&blob); err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewMapper(loopnest.MustAlgorithm("conv1d"), archpkg.Default(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadSurrogate(&blob); err != nil {
		t.Fatal(err)
	}

	prob, err := loopnest.NewConv1DProblem("integration", 4096, 9)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := fresh.NewProblemContext(prob)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fresh.FindMapping(pc, search.Budget{MaxEvals: 300}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.IsMember(&res.Best); err != nil {
		t.Fatalf("pipeline produced invalid mapping: %v", err)
	}

	// The result must beat the average random mapping by a wide margin.
	rng := stats.NewRNG(12)
	var mean stats.Running
	for i := 0; i < 50; i++ {
		m := pc.GetMapping(rng)
		_, edp, err := pc.Evaluate(&m)
		if err != nil {
			t.Fatal(err)
		}
		mean.Add(edp)
	}
	if res.BestEDP > 0.5*mean.Mean() {
		t.Fatalf("pipeline result %v does not beat mean random %v", res.BestEDP, mean.Mean())
	}

	// The rendered loop nest must reflect the mapping.
	nest := pc.Space.RenderLoopNest(&res.Best)
	if len(nest) == 0 {
		t.Fatal("empty loop nest rendering")
	}
}

// TestPipelineSurrogateReusedAcrossProblems verifies the paper's central
// amortization claim: one surrogate serves many problems of the algorithm.
func TestPipelineSurrogateReusedAcrossProblems(t *testing.T) {
	mp := integrationMapper(t)
	for _, spec := range []struct {
		name string
		w, r int
	}{
		{"p1", 1024, 3},
		{"p2", 2048, 5},
		{"p3", 512, 8},
	} {
		prob, err := loopnest.NewConv1DProblem(spec.name, spec.w, spec.r)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := mp.NewProblemContext(prob)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mp.FindMapping(pc, search.Budget{MaxEvals: 150}, 3)
		if err != nil {
			t.Fatalf("%s: %v", spec.name, err)
		}
		if res.BestEDP < 1 {
			t.Fatalf("%s: EDP %v below the lower bound", spec.name, res.BestEDP)
		}
	}
}

// TestPipelineIsoTimeAdvantage verifies the end-to-end iso-time mechanism:
// under reference-model latency, the gradient search completes many more
// steps than a paid baseline in the same wall-clock window.
func TestPipelineIsoTimeAdvantage(t *testing.T) {
	mp := integrationMapper(t)
	prob, err := loopnest.NewConv1DProblem("isotime", 2048, 4)
	if err != nil {
		t.Fatal(err)
	}
	budget := search.Budget{MaxTime: 80 * time.Millisecond}

	pcSA, err := mp.NewProblemContext(prob)
	if err != nil {
		t.Fatal(err)
	}
	pcSA.QueryLatency = 2 * time.Millisecond
	saRes, err := mp.SearchWith(search.SimulatedAnnealing{}, pcSA, budget, 5)
	if err != nil {
		t.Fatal(err)
	}

	pcMM, err := mp.NewProblemContext(prob)
	if err != nil {
		t.Fatal(err)
	}
	pcMM.QueryLatency = 2 * time.Millisecond
	mmRes, err := mp.FindMapping(pcMM, budget, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mmRes.Evals < 4*saRes.Evals {
		t.Fatalf("MM steps (%d) not clearly above SA steps (%d) at iso-time", mmRes.Evals, saRes.Evals)
	}
}
